(** Observability: process-global metrics, span tracing, and run manifests.

    Three layers, all cheap enough to leave permanently enabled:

    - {b metrics} — a global registry of named counters, gauges, and
      fixed-bucket histograms.  The hot path is a mutable-field bump; no
      allocation, no I/O.  Histograms wrap the [Stats] Welford accumulator
      for streaming mean/variance alongside the bucket counts.
    - {b span tracing} — [Trace.with_span] times a scoped computation on
      the monotonic clock and records it into a bounded in-memory ring
      buffer, exportable as Chrome-trace-compatible JSONL.
    - {b run manifests} — [Report.write] snapshots the whole registry plus
      per-span-name summaries into one JSON document per run.

    Metric names follow the [subsystem.noun_unit] convention
    (e.g. [des.events_total], [pauli.decode_seconds.uf]).  Nothing here
    writes to stdout; exporters only run when explicitly invoked, so
    instrumented programs produce byte-identical output unless asked. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds.  Zero point is arbitrary. *)

val reset : unit -> unit
(** Zero every registered metric in place and clear recorded spans (test
    isolation).  Metric handles stay registered and usable. *)

(** Minimal JSON tree: emitter plus a strict parser, enough to round-trip
    the documents this module writes without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialization.  Floats render via ["%.17g"] so parsing the
      output recovers the exact value. *)

  val parse : string -> t
  (** Strict parse of one JSON value; raises [Failure] on malformed input
      or trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on missing field or non-object. *)

  val to_float : t -> float
  (** Numeric value of [Int] or [Float]; raises [Failure] otherwise. *)
end

(** Monotonically increasing integer metric. *)
module Counter : sig
  type t

  val create : string -> t
  (** Registers (or retrieves — names are interned) the counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Last-written (or high-water) float metric. *)
module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val set_max : t -> float -> unit
  (** Keep the running maximum: [set] only if the new value is greater. *)

  val value : t -> float
  val name : t -> string
end

(** Fixed-bucket histogram with streaming Welford mean/variance. *)
module Histogram : sig
  type t

  val default_buckets : float array
  (** Log-spaced upper bounds from 1 ns to 100 s — suited to durations in
      seconds, the common case here. *)

  val create : ?buckets:float array -> string -> t
  (** [buckets] are strictly increasing upper bounds; samples above the
      last bound land in an overflow bucket.  Interned by name; [buckets]
      is ignored when the name already exists. *)

  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]: bucket-interpolated estimate (linear
      within the bucket holding rank [q * count], edges clamped to the
      observed min/max).  With a single sample — or when every sample was
      the same value — returns that exact value.  [nan] when empty; raises
      [Invalid_argument] on [q] outside [0, 1]. *)

  val min_value : t -> float
  (** [infinity] when empty. *)

  val max_value : t -> float
  (** [neg_infinity] when empty. *)

  val bucket_counts : t -> (float * int) array
  (** [(upper_bound, count)] pairs, in bound order, excluding overflow. *)

  val overflow : t -> int
  val name : t -> string
end

(** Timed, nested spans in a bounded ring buffer. *)
module Trace : sig
  type span = {
    name : string;
    start_ns : int64;  (** relative to process start of tracing *)
    dur_ns : int64;
    depth : int;  (** 0 = root; nesting depth at entry *)
    domain : int;  (** id of the domain that recorded the span *)
    path : string;
        (** caller path including the span itself, [";"]-separated — e.g.
            ["cmd.fig6;qec.logical_error_rate"].  Spans recorded inside
            [Parallel] tasks inherit the submitting caller's path, so paths
            are identical at any job count.  Span names should therefore
            avoid [';']. *)
    attrs : (string * string) list;
  }

  val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, record a completed span (also on exception, which is
      re-raised).  Spans closed after the ring fills overwrite the oldest. *)

  val spans : unit -> span list
  (** Retained spans, in completion order. *)

  val recorded : unit -> int
  (** Total spans ever recorded, including those evicted from the ring. *)

  val summaries : unit -> (string * int * int64) list
  (** Per-name [(name, count, total_ns)] aggregates over {e all} spans,
      sorted by name; unaffected by ring eviction. *)

  val by_path : unit -> (string * int * int64) list
  (** Per-caller-path [(path, count, total_ns)] aggregates over {e all}
      spans, sorted by path; unaffected by ring eviction.  The profiler's
      input. *)

  val set_capacity : int -> unit
  (** Resize the ring (clears retained spans); default 65536. *)

  val export : path:string -> unit
  (** Write retained spans as JSONL, one Chrome-trace complete event per
      line: [{"name":…,"ph":"X","ts":µs,"dur":µs,"pid":0,"tid":domain,
      "args":{"depth":…,"path":…,…}}].  [tid] is the recording domain, so
      Perfetto renders one track per domain; nesting depth and the caller
      path travel in [args]. *)
end

(** Call-tree profiler over caller-path-keyed span aggregates.

    Cumulative time is summed per exact caller path; {e self} time is
    cumulative minus the cumulative time of direct children, so self times
    telescope — summed over the whole tree they equal the root spans'
    cumulative time exactly (up to clamping of clock jitter).  All
    renderings sort lexicographically by path and are therefore
    deterministic regardless of span completion order across domains. *)
module Profile : sig
  type node = {
    path : string;  (** full [";"]-separated caller path *)
    name : string;  (** leaf segment of [path] *)
    count : int;
    cum_ns : int64;
    self_ns : int64;  (** [cum_ns] minus direct children's [cum_ns], >= 0 *)
    children : node list;  (** sorted by name *)
  }

  val tree : unit -> node list
  (** Roots of the call tree aggregated from {!Trace.by_path}. *)

  val of_totals : (string * int * int64) list -> node list
  (** Build a tree from explicit [(path, count, total_ns)] aggregates, e.g.
      re-aggregated from an exported trace file.  Paths appearing without
      their parent produce implicit zero-count interior nodes. *)

  val folded : ?weight:[ `Self_ns | `Count ] -> node list -> string
  (** Folded-stack text ([root;child;leaf weight], one line per node with a
      positive weight, sorted by path) — the input format of flamegraph.pl
      and speedscope.  [`Self_ns] (default) weights by self nanoseconds;
      [`Count] weights by span count, which is byte-identical across
      [--jobs] settings for a deterministic workload. *)

  val top : ?limit:int -> node list -> node list
  (** Flattened nodes ranked by self time, descending (path breaks ties). *)

  val top_table : ?limit:int -> node list -> string
  (** Rendered self-time table (self ms, count, cumulative ms, self%, path);
      [limit] defaults to 20. *)
end

(** Append-only JSONL telemetry heartbeat, schema [hetarch.telemetry/1].

    One record per tick: monotonic elapsed seconds, every counter's value
    and its delta since the previous record (plus derived per-second rates),
    GC minor/major deltas, and — when a campaign registered a progress
    provider — per-task progress (shots, errors, Wilson half-width,
    remaining shots) and a campaign ETA at the current rate.

    Ticks are driven {e synchronously} from [Parallel] chunk boundaries and
    [Collect] batch completions; there is no background thread, so enabling
    telemetry cannot change any computed result.  A disabled tick costs one
    atomic load; an enabled one is throttled to the configured interval. *)
module Telemetry : sig
  type task_progress = {
    tp_id : string;
    tp_kind : string;
    tp_shots : int;
    tp_errors : int;
    tp_resumed : int;  (** shots replayed from a ledger *)
    tp_rel_halfwidth : float;  (** [nan] when undefined (zero errors) *)
    tp_remaining : int;  (** shots to the task's ceiling; 0 once stopped *)
    tp_done : bool;
  }

  type campaign = {
    c_elapsed_s : float;  (** since the provider registered *)
    c_done : int;
    c_total : int;
    c_shots : int;  (** merged, including resumed *)
    c_new_shots : int;  (** sampled by this run *)
    c_rate : float;  (** new shots per second *)
    c_remaining : int;
    c_eta_s : float option;
    c_tasks : task_progress list;
  }

  val enable : path:string -> interval_s:float -> unit
  (** Open (truncating) [path], write a baseline record (seq 0), and start
      accepting ticks at most every [interval_s] seconds ([0.] = every
      tick).  Re-enabling closes the previous sink first. *)

  val disable : unit -> unit
  (** Write one final forced record and close the sink.  No-op when
      telemetry was never enabled. *)

  val enabled : unit -> bool

  val tick : ?force:bool -> unit -> unit
  (** Append a record if enabled and the interval has elapsed ([force]
      bypasses the throttle).  Domain-safe. *)

  val set_campaign : (unit -> task_progress list) option -> unit
  (** Register (or clear) the campaign progress provider and restart the
      campaign clock.  The provider is called at each tick and by
      {!campaign_snapshot}; it must be cheap and domain-safe. *)

  val campaign_snapshot : unit -> campaign option
  (** Aggregate the provider's current task list into campaign totals, rate
      and ETA — the single code path behind both the telemetry records and
      the collect [--progress] line.  [None] when no provider is set. *)

  val reset_baseline : unit -> unit
  (** Forget the counter/GC delta baseline (done by [Obs.reset]) so the
      next record's deltas measure from zero rather than going negative. *)
end

(** Manifest and bench comparison: a perf-regression gate.

    Extracts the time-like metrics of two parsed documents — kernel ns/run
    from [hetarch.bench/2], span [total_ns] and histogram means from
    [hetarch.obs/*] — and flags relative regressions past a threshold
    (higher is always worse). *)
module Diff : sig
  type entry = {
    metric : string;
    a : float;
    b : float;
    pct : float;  (** [100 * (b - a) / a]; [0.] when both sides are zero *)
    regression : bool;
  }

  type result = {
    entries : entry list;  (** metric intersection, sorted by name *)
    regressions : entry list;  (** past the threshold, worst first *)
    only_a : string list;  (** metrics present only in the first document *)
    only_b : string list;
    scale : float;
        (** Divisor applied to every current value before comparison: the
            median current/baseline ratio when [normalize] was set,
            [1.] otherwise. *)
  }

  val default_threshold_pct : float
  (** 20%. *)

  val metrics_of : Json.t -> (string * float) list
  (** Raises [Failure] on an unrecognized schema. *)

  val compare_docs :
    ?threshold_pct:float ->
    ?noise_floor_ns:float ->
    ?normalize:bool ->
    Json.t ->
    Json.t ->
    result
  (** [compare_docs a b] treats [a] as the baseline.

      [noise_floor_ns] (default 0): metrics whose baseline and current
      values are both below the floor stay listed but are never flagged
      as regressions — relative thresholds are meaningless under the
      machine's scheduling noise.

      [normalize] (default false): divide every current value by the
      median current/baseline ratio across the common metrics before
      comparing, cancelling a uniform machine-speed difference between
      the two documents; a genuine single-metric regression moves against
      the median and survives normalization.  Use when gating CI runners
      against a baseline produced on different hardware. *)
end

(** One-document run manifest: the registry plus span summaries.

    Schema [hetarch.obs/2]: adds a [process] section (GC collection and
    allocation counters from [Gc.quick_stat], peak heap words, wall-clock
    run seconds), p50/p90/p99 quantile estimates on every histogram, and
    [p50_ns]/[p90_ns]/[p99_ns] per span name computed over the retained
    trace ring (absent when the ring holds no spans of that name). *)
module Report : sig
  val to_json : unit -> Json.t
  (** Keys sorted within each section for deterministic output. *)

  val write : path:string -> unit
end
