(** Observability: process-global metrics, span tracing, and run manifests.

    Three layers, all cheap enough to leave permanently enabled:

    - {b metrics} — a global registry of named counters, gauges, and
      fixed-bucket histograms.  The hot path is a mutable-field bump; no
      allocation, no I/O.  Histograms wrap the [Stats] Welford accumulator
      for streaming mean/variance alongside the bucket counts.
    - {b span tracing} — [Trace.with_span] times a scoped computation on
      the monotonic clock and records it into a bounded in-memory ring
      buffer, exportable as Chrome-trace-compatible JSONL.
    - {b run manifests} — [Report.write] snapshots the whole registry plus
      per-span-name summaries into one JSON document per run.

    Metric names follow the [subsystem.noun_unit] convention
    (e.g. [des.events_total], [pauli.decode_seconds.uf]).  Nothing here
    writes to stdout; exporters only run when explicitly invoked, so
    instrumented programs produce byte-identical output unless asked. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds.  Zero point is arbitrary. *)

val reset : unit -> unit
(** Zero every registered metric in place and clear recorded spans (test
    isolation).  Metric handles stay registered and usable. *)

(** Minimal JSON tree: emitter plus a strict parser, enough to round-trip
    the documents this module writes without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialization.  Floats render via ["%.17g"] so parsing the
      output recovers the exact value. *)

  val parse : string -> t
  (** Strict parse of one JSON value; raises [Failure] on malformed input
      or trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on missing field or non-object. *)

  val to_float : t -> float
  (** Numeric value of [Int] or [Float]; raises [Failure] otherwise. *)

  val to_int : t -> int
  (** Integer value of [Int], or of a [Float] that is exactly integral
      (within the 53-bit exact range); raises [Failure] otherwise.  JSON
      has one number type, so writers that round-trip through floats may
      deliver integral values as [Float]. *)
end

val fold_jsonl : string -> ('a -> Json.t -> 'a) -> 'a -> 'a
(** Torn-tail-tolerant fold over a JSONL file: blank and unparsable lines
    (the truncated final record a killed — or still-writing — process
    leaves behind) are skipped, mirroring the collect ledger's replay.
    Raises [Sys_error] if the file cannot be opened. *)

(** Process-level run identity, stamped into every observability artifact
    (run manifests, telemetry records, Chrome-trace exports, snapshots) so
    fleet tooling can correlate the artifacts of one run after the fact. *)
module Run : sig
  val id : unit -> string
  (** Stable 64-bit run id as 16 hex digits: a content hash of argv, pid
      and the process start time, computed once per process.
      [HETARCH_RUN_ID] (16 hex digits) overrides it — used by tests and
      fixtures that need reproducible ids. *)

  val started_unix : float
  (** Wall-clock process start, unix seconds. *)

  val set_shard : string -> unit
  (** Set the free-form shard label ("shard0/3", a host name, ...) carried
      by every artifact; empty by default.  Set once at startup. *)

  val shard : unit -> string

  val json : unit -> Json.t
  (** [{"id": ..., "shard": ...}] — the bare run stamp.  Most documents
      embed {!Context.stamp} instead, which extends this with the trace
      context. *)
end

(** Distributed trace context, W3C-traceparent style: a 128-bit
    [(trace_id, span_id)] pair of 16-hex-digit halves, minted from the run
    id at first use — or inherited from the [HETARCH_TRACE_PARENT]
    environment variable / [--trace-parent] flag, in which case this
    process keeps the parent's [trace_id], records the parent's [span_id]
    as [parent_span_id], and mints only its own [span_id].  Every process
    of a fleet therefore shares one [trace_id] and the per-process span
    ids form a tree, which is what lets [obs trace-merge] and
    [obs monitor] correlate a coordinator with the shard children it
    forked.  The context is stamped into telemetry records, Chrome-trace
    metadata events, run manifests, and registry snapshots. *)
module Context : sig
  type t = {
    trace_id : string;  (** 16 hex digits, shared fleet-wide *)
    span_id : string;  (** 16 hex digits, unique per process *)
    parent_span_id : string;  (** [""] for a root (unparented) process *)
  }

  val env_var : string
  (** ["HETARCH_TRACE_PARENT"]. *)

  val mint : run_id:string -> t
  (** Root context: both halves are content hashes of the run id, so a
      pinned [HETARCH_RUN_ID] yields a reproducible context. *)

  val child : t -> run_id:string -> t
  (** Inherit [trace_id], record the parent's [span_id] as
      [parent_span_id], mint a fresh [span_id] from [run_id]. *)

  val to_string : t -> string
  (** ["<trace_id>-<span_id>"] — the wire form handed to children. *)

  val of_string : string -> t option
  (** Parse the wire form; [None] unless exactly [<16 hex>-<16 hex>]. *)

  val set_parent : string -> unit
  (** Install a parent context string (the [--trace-parent] flag), taking
      precedence over the environment variable.  Must run before the first
      {!current} forces the context; later calls have no effect. *)

  val current : unit -> t
  (** This process's context, computed once on first use: [set_parent]
      value, else [HETARCH_TRACE_PARENT], else a freshly minted root.  A
      malformed parent string warns on stderr and falls back to minting. *)

  val fields : unit -> (string * Json.t) list
  (** [trace_id]/[span_id]/[parent_span_id] as JSON object fields. *)

  val stamp : unit -> Json.t
  (** {!Run.json} extended with {!fields} — the run stamp every
      observability document embeds. *)
end

(** Monotonically increasing integer metric. *)
module Counter : sig
  type t

  val create : string -> t
  (** Registers (or retrieves — names are interned) the counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Last-written (or high-water) float metric. *)
module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val set_max : t -> float -> unit
  (** Keep the running maximum: [set] only if the new value is greater. *)

  val value : t -> float
  val name : t -> string
end

(** Fixed-bucket histogram with streaming Welford mean/variance. *)
module Histogram : sig
  type t

  val default_buckets : float array
  (** Log-spaced upper bounds from 1 ns to 100 s — suited to durations in
      seconds, the common case here. *)

  val create : ?buckets:float array -> string -> t
  (** [buckets] are strictly increasing upper bounds; samples above the
      last bound land in an overflow bucket.  Interned by name; [buckets]
      is ignored when the name already exists. *)

  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]: bucket-interpolated estimate (linear
      within the bucket holding rank [q * count], edges clamped to the
      observed min/max).  With a single sample — or when every sample was
      the same value — returns that exact value.  [nan] when empty; raises
      [Invalid_argument] on [q] outside [0, 1]. *)

  val min_value : t -> float
  (** [infinity] when empty. *)

  val max_value : t -> float
  (** [neg_infinity] when empty. *)

  val bucket_counts : t -> (float * int) array
  (** [(upper_bound, count)] pairs, in bound order, excluding overflow. *)

  val overflow : t -> int
  val name : t -> string
end

(** Timed, nested spans in a bounded ring buffer. *)
module Trace : sig
  type span = {
    name : string;
    start_ns : int64;  (** relative to process start of tracing *)
    dur_ns : int64;
    depth : int;  (** 0 = root; nesting depth at entry *)
    domain : int;  (** id of the domain that recorded the span *)
    path : string;
        (** caller path including the span itself, [";"]-separated — e.g.
            ["cmd.fig6;qec.logical_error_rate"].  Spans recorded inside
            [Parallel] tasks inherit the submitting caller's path, so paths
            are identical at any job count.  Span names should therefore
            avoid [';']. *)
    minor_w : int;
        (** minor-heap words allocated on the recording domain inside the
            span window ([Gc.quick_stat] delta between entry and exit,
            clamped >= 0).  Exact, not sampled: word counters are
            mutator-maintained.  Includes the constant cost of the entry
            sample's own stat record. *)
    promoted_w : int;  (** words promoted minor→major inside the window *)
    major_w : int;  (** words allocated directly on the major heap *)
    attrs : (string * string) list;
  }

  val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, record a completed span (also on exception, which is
      re-raised).  Spans closed after the ring fills overwrite the oldest.
      Entry/exit sample the domain-local GC word counters, so every span
      carries its own allocation alongside its duration. *)

  val spans : unit -> span list
  (** Retained spans, in completion order. *)

  val recorded : unit -> int
  (** Total spans ever recorded, including those evicted from the ring. *)

  val summaries : unit -> (string * int * int64 * int * int * int) list
  (** Per-name [(name, count, total_ns, minor_w, promoted_w, major_w)]
      aggregates over {e all} spans, sorted by name; unaffected by ring
      eviction. *)

  val by_path : unit -> (string * int * int64 * int * int * int) list
  (** Per-caller-path [(path, count, total_ns, minor_w, promoted_w,
      major_w)] aggregates over {e all} spans, sorted by path; unaffected
      by ring eviction.  The profiler's input. *)

  val set_capacity : int -> unit
  (** Resize the ring (clears retained spans); default 65536. *)

  val export : path:string -> unit
  (** Write retained spans as JSONL, one Chrome-trace complete event per
      line: [{"name":…,"ph":"X","ts":µs,"dur":µs,"pid":0,"tid":domain,
      "args":{"trace_id":…,"depth":…,"path":…,…}}].  [tid] is the
      recording domain, so Perfetto renders one track per domain; nesting
      depth and the caller path travel in [args].  The first line is a
      [ph:"M"] ["hetarch.run"] metadata event carrying {!Context.stamp}
      plus [ts0_unix] — the wall-clock instant of this process's monotonic
      zero, the clock handshake {!Trace_merge} aligns timelines with. *)
end

(** Call-tree profiler over caller-path-keyed span aggregates.

    Cumulative time is summed per exact caller path; {e self} time is
    cumulative minus the cumulative time of direct children, so self times
    telescope — summed over the whole tree they equal the root spans'
    cumulative time exactly (up to clamping of clock jitter).  Minor-word
    allocation telescopes by the identical rule ([self_w] = [cum_w] minus
    direct children's [cum_w]), attributing every allocated word to the
    innermost span that allocated it.  All renderings sort
    lexicographically by path and are therefore deterministic regardless of
    span completion order across domains. *)
module Profile : sig
  type node = {
    path : string;  (** full [";"]-separated caller path *)
    name : string;  (** leaf segment of [path] *)
    count : int;
    cum_ns : int64;
    self_ns : int64;  (** [cum_ns] minus direct children's [cum_ns], >= 0 *)
    cum_w : int;  (** cumulative minor words under this path *)
    self_w : int;
        (** [cum_w] minus direct children's [cum_w], clamped >= 0 (a parent
            whose children ran on other domains never saw their words) *)
    children : node list;  (** sorted by name *)
  }

  val tree : unit -> node list
  (** Roots of the call tree aggregated from {!Trace.by_path}. *)

  val of_totals : (string * int * int64 * int * int * int) list -> node list
  (** Build a tree from explicit [(path, count, total_ns, minor_w,
      promoted_w, major_w)] aggregates, e.g. re-aggregated from an exported
      trace file.  Paths appearing without their parent produce implicit
      zero-count interior nodes. *)

  val folded : ?weight:[ `Self_ns | `Count | `Self_alloc ] -> node list -> string
  (** Folded-stack text ([root;child;leaf weight], one line per node with a
      positive weight, sorted by path) — the input format of flamegraph.pl
      and speedscope.  [`Self_ns] (default) weights by self nanoseconds;
      [`Count] weights by span count, which is byte-identical across
      [--jobs] settings for a deterministic workload; [`Self_alloc] weights
      by self minor words — exact counts, byte-identical across runs and
      [--jobs] for workloads whose spans execute sequentially. *)

  val top :
    ?sort:[ `Self | `Cum | `Count | `Alloc ] -> ?limit:int -> node list -> node list
  (** Flattened nodes ranked descending by the sort key — self time
      (default), cumulative time, span count, or self minor words — with
      path as tiebreak. *)

  val top_table :
    ?sort:[ `Self | `Cum | `Count | `Alloc ] -> ?limit:int -> node list -> string
  (** Rendered table (self ms, count, cumulative ms, self%, self words,
      path); [limit] defaults to 20, [sort] to self time. *)
end

(** Append-only JSONL telemetry heartbeat, schema [hetarch.telemetry/4]
    (v2 added the {!Run} stamp to every record; v3 adds the minor-words
    allocation delta to the [gc] section and a [gc.minor_words_per_s]
    rate; v4 stamps the trace context into [run], adds [interval_s] — the
    writer's declared throttle interval, which staleness detectors judge
    against — a [parallel] section with live [queue_depth]/[busy_domains]
    gauges, and marks the stream's closing record with [("final", true)]
    so readers can tell a completed stream from a stalled one).

    One record per tick: monotonic elapsed seconds, every counter's value
    and its delta since the previous record (plus derived per-second rates),
    GC minor/major deltas and the allocation-words delta (clamped >= 0),
    and — when a campaign registered a progress provider — per-task
    progress (shots, errors, Wilson half-width, remaining shots) and a
    campaign ETA at the current rate.

    Ticks are driven {e synchronously} from [Parallel] chunk boundaries and
    [Collect] batch completions; there is no background thread, so enabling
    telemetry cannot change any computed result.  A disabled tick costs one
    atomic load; an enabled one is throttled to the configured interval. *)
module Telemetry : sig
  type task_progress = {
    tp_id : string;
    tp_kind : string;
    tp_shots : int;
    tp_errors : int;
    tp_resumed : int;  (** shots replayed from a ledger *)
    tp_rel_halfwidth : float;  (** [nan] when undefined (zero errors) *)
    tp_remaining : int;  (** shots to the task's ceiling; 0 once stopped *)
    tp_done : bool;
  }

  type campaign = {
    c_elapsed_s : float;  (** since the provider registered *)
    c_done : int;
    c_total : int;
    c_shots : int;  (** merged, including resumed *)
    c_new_shots : int;  (** sampled by this run *)
    c_rate : float;  (** new shots per second *)
    c_remaining : int;
    c_eta_s : float option;
    c_tasks : task_progress list;
  }

  val enable : path:string -> interval_s:float -> unit
  (** Open (truncating) [path], write a baseline record (seq 0), and start
      accepting ticks at most every [interval_s] seconds ([0.] = every
      tick).  Re-enabling closes the previous sink first. *)

  val disable : unit -> unit
  (** Write one final forced record and close the sink.  No-op when
      telemetry was never enabled.  Also installed as an [at_exit] hook by
      {!enable}, so a run that exits between ticks (including via [exit]
      deep inside a command) still leaves a complete final heartbeat. *)

  val enabled : unit -> bool

  val tick : ?force:bool -> unit -> unit
  (** Append a record if enabled and the interval has elapsed ([force]
      bypasses the throttle).  Domain-safe. *)

  val set_campaign : (unit -> task_progress list) option -> unit
  (** Register (or clear) the campaign progress provider and restart the
      campaign clock.  The provider is called at each tick and by
      {!campaign_snapshot}; it must be cheap and domain-safe. *)

  val campaign_snapshot : unit -> campaign option
  (** Aggregate the provider's current task list into campaign totals, rate
      and ETA — the single code path behind both the telemetry records and
      the collect [--progress] line.  [None] when no provider is set. *)

  val reset_baseline : unit -> unit
  (** Forget the counter/GC delta baseline (done by [Obs.reset]) so the
      next record's deltas measure from zero rather than going negative. *)
end

(** Manifest and bench comparison: a perf-regression gate.

    Extracts the worse-when-higher metrics of two parsed documents — kernel
    ns/run from [hetarch.bench/*]; span [total_ns], span minor-word totals
    (as [alloc:<name>], when present) and histogram means from
    [hetarch.obs/*], [hetarch.snapshot/*] and [hetarch.fleet/*] — and flags
    relative regressions past a threshold.  The alloc metrics feed the
    {!Trend} watchdog, so allocation regressions gate like time ones. *)
module Diff : sig
  type entry = {
    metric : string;
    a : float;
    b : float;
    pct : float;  (** [100 * (b - a) / a]; [0.] when both sides are zero *)
    regression : bool;
  }

  type result = {
    entries : entry list;  (** metric intersection, sorted by name *)
    regressions : entry list;  (** past the threshold, worst first *)
    only_a : string list;  (** metrics present only in the first document *)
    only_b : string list;
    scale : float;
        (** Divisor applied to every current value before comparison: the
            median current/baseline ratio when [normalize] was set,
            [1.] otherwise. *)
  }

  val default_threshold_pct : float
  (** 20%. *)

  val metrics_of : Json.t -> (string * float) list
  (** Raises [Failure] on an unrecognized schema. *)

  val compare_docs :
    ?threshold_pct:float ->
    ?noise_floor_ns:float ->
    ?normalize:bool ->
    Json.t ->
    Json.t ->
    result
  (** [compare_docs a b] treats [a] as the baseline.

      [noise_floor_ns] (default 0): metrics whose baseline and current
      values are both below the floor stay listed but are never flagged
      as regressions — relative thresholds are meaningless under the
      machine's scheduling noise.

      [normalize] (default false): divide every current value by the
      median current/baseline ratio across the common metrics before
      comparing, cancelling a uniform machine-speed difference between
      the two documents; a genuine single-metric regression moves against
      the median and survives normalization.  Use when gating CI runners
      against a baseline produced on different hardware. *)
end

(** One-document run manifest: the registry plus span summaries.

    Schema [hetarch.obs/5] (v4 added per-span-name [minor_w]/[promoted_w]/
    [major_w] allocation totals; v5 stamps the trace context into [run]
    and adds [parallel.queue_depth]/[parallel.busy_domains] gauges): a
    [run] stamp ({!Context.stamp}), a [process]
    section (GC collection and allocation counters from [Gc.quick_stat],
    peak heap words, wall-clock run seconds), p50/p90/p99 quantile
    estimates on every histogram, and [p50_ns]/[p90_ns]/[p99_ns] per span
    name computed over the retained trace ring (absent when the ring holds
    no spans of that name). *)
module Report : sig
  val to_json : unit -> Json.t
  (** Keys sorted within each section for deterministic output. *)

  val write : path:string -> unit
end

(** Complete, versioned, content-hashed serialization of one process's obs
    state — the unit of fleet-scale aggregation (schema
    [hetarch.snapshot/3]; v2 documents still parse with trace-context
    fields defaulting to [""], and v1 additionally with absent alloc
    fields defaulting to zero).

    Where the {!Report} manifest is a human-facing summary with lossy
    derived quantities (quantile estimates, variance), a snapshot carries
    the {e raw mergeable state}: integer bucket counts, Welford
    [(count, mean, m2)] triples, per-span-name and per-caller-path
    aggregates including raw allocation words (the path aggregates
    reconstruct the profile trie — time and allocation — exactly via
    {!Profile.of_totals}), the GC/process section, and run metadata (run
    id, shard label, argv, wall span, jobs).

    Serialization is canonical — sections sorted by name, floats emitted in
    round-tripping form — so [of_json] ∘ [to_json] is the identity and the
    content hash (computed over the serialization minus the hash field
    itself) is well defined.  The record type is exposed so tests and
    benches can build synthetic snapshots. *)
module Snapshot : sig
  type hist = {
    h_bounds : float array;  (** bucket upper bounds, as configured *)
    h_counts : int array;  (** raw per-bucket counts *)
    h_overflow : int;
    h_count : int;
    h_mean : float;
    h_m2 : float;  (** Welford sum of squared deviations from the mean *)
    h_min : float;  (** [infinity] when empty *)
    h_max : float;  (** [neg_infinity] when empty *)
  }

  type process = {
    p_minor_collections : int;
    p_major_collections : int;
    p_compactions : int;
    p_minor_words : float;
    p_promoted_words : float;
    p_major_words : float;
    p_heap_words : int;
    p_top_heap_words : int;
  }

  type t = {
    run_id : string;
    shard : string;
    trace_id : string;  (** [""] on documents older than v3 *)
    span_id : string;
    parent_span_id : string;  (** [""] for a root (unparented) run *)
    argv : string list;
    started_unix : float;
    wall_seconds : float;
    jobs : int;
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * float) list;
    histograms : (string * hist) list;
    spans : (string * int * int64 * int * int * int) list;
        (** (name, count, total_ns, minor_w, promoted_w, major_w) *)
    paths : (string * int * int64 * int * int * int) list;
        (** profile trie, keyed by path; same aggregate shape *)
    process : process;
  }

  val schema : string

  val schema_v2 : string
  (** The pre-trace-context schema string, still accepted by {!of_json}. *)

  val schema_v1 : string
  (** The pre-allocation schema string, still accepted by {!of_json}. *)

  val capture : unit -> t
  (** Snapshot the whole registry plus trace aggregates, process stats and
      run metadata.  Histograms are read under their locks; domain-safe. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> t
  (** Raises [Failure] on an unrecognized schema or a malformed document. *)

  val content_hash : t -> string
  (** 16-hex-digit hash of the canonical serialization (excluding the
      [content_hash] field itself). *)

  val write : path:string -> t -> unit
  (** Atomic: temp file in the destination directory, then rename — a kill
      mid-write never leaves a torn snapshot. *)

  val load : string -> t
end

(** Deterministic, order-insensitive union of snapshots into one fleet view
    (schema [hetarch.fleet/3], whose attribution entries carry each
    source's [trace_id]; v2 and v1 documents still flatten via
    {!of_json}).

    The merged document embeds its full source snapshots and recomputes
    every aggregate by folding them in a canonical order (run id, then
    content hash, duplicates removed) — so the output is {e byte-identical}
    regardless of merge order, merge grouping, or the [--jobs] setting of
    the source processes, even though float addition itself is not
    associative.  Counters and span/path aggregates (times and allocation
    words alike) sum; histograms
    bucket-merge and combine Welford states exactly (Chan's parallel
    update), raising [Failure] on mismatched bucket bounds; gauges — not
    meaningfully summable across processes — carry per-source values with
    n/sum/min/max; the process section sums, keeping the max peak heap. *)
module Merge : sig
  type t

  val schema : string

  val schema_v2 : string
  (** The pre-trace-context schema string, still accepted by {!of_json}. *)

  val schema_v1 : string
  (** The original schema string, still accepted by {!of_json}. *)

  val of_snapshots : Snapshot.t list -> t
  val union : t -> t -> t
  (** Commutative, associative and idempotent up to byte equality of
      [to_json]. *)

  val sources : t -> Snapshot.t list
  (** Deduplicated sources in canonical order. *)

  val to_json : t -> Json.t

  val of_json : Json.t -> t
  (** Accepts a snapshot document or a fleet document (flattened back to
      its sources, so merging merged documents is exact). *)
end

(** Append-only run registry under [HETARCH_OBS_DIR].

    Layout: [<dir>/snapshots/<run_id>.json] (atomic writes) plus
    [<dir>/index.jsonl] with one line per recorded run.  Appends are
    single flushed lines, so concurrent shard processes interleave whole
    records; replay skips blank and torn lines like the collect ledger. *)
module Registry : sig
  type entry = {
    e_run_id : string;
    e_shard : string;
    e_trace : string;  (** trace_id; [""] on entries recorded before v3 *)
    e_cmd : string;  (** leading non-flag argv words, e.g. ["collect uec"] *)
    e_file : string;  (** snapshot file name relative to [<dir>/snapshots] *)
    e_hash : string;  (** snapshot content hash *)
    e_unix : float;  (** run start, unix seconds *)
  }

  val cmd_of_argv : string list -> string
  (** The command key index entries group runs under: the leading non-flag
      argv words after the executable (e.g. ["collect uec"]), falling back
      to the executable basename. *)

  val set_dir : string option -> unit
  (** Override the registry directory ([Some dir]), or fall back to the
      [HETARCH_OBS_DIR] environment variable ([None], the default). *)

  val dir : unit -> string option
  (** Effective registry directory; [None] disables the registry. *)

  val record : ?dir:string -> Snapshot.t -> entry option
  (** Write the snapshot into the registry and append an index entry.
      [None] when no directory is configured. *)

  val entries : ?dir:string -> unit -> entry list
  (** Index entries in append order; [] without a configured directory. *)

  val load : ?dir:string -> entry -> Snapshot.t

  val find : ?dir:string -> string -> entry option
  (** Latest entry whose run id starts with the given prefix; [None] on no
      match; raises [Failure] when the prefix matches several run ids. *)

  val telemetry_dir : string -> string
  (** [<dir>/telemetry] — one [<run_id>.jsonl] live heartbeat stream per
      process, the directory {!Monitor.scan} watches. *)

  val telemetry_sink : ?dir:string -> string -> string option
  (** [telemetry_sink run_id] creates the telemetry directory and returns
      the stream path for [run_id]; [None] when no registry directory is
      configured. *)

  val snapshot_exists : ?dir:string -> entry -> bool
  (** Whether the entry's snapshot file is still on disk (hand-deleted
      snapshots leave dangling index lines behind). *)

  val prune : ?dir:string -> unit -> int * int
  (** Compact [index.jsonl] down to entries whose snapshot file exists.
      The rewrite is atomic (temp file + rename).  Returns
      [(kept, dropped)]; [(0, 0)] without a configured directory. *)
end

(** Live fleet view over {!Registry.telemetry_dir}: one row per heartbeat
    stream, summarizing its last complete record (reads are
    torn-tail-tolerant via {!fold_jsonl}).  Status classification needs no
    cooperation from the writer beyond the v4 telemetry fields: [Done]
    when the last record carries [("final", true)] or the run has reached
    [index.jsonl]; [Stalled] when the file has gone untouched for
    [stall_factor × max(interval_s, 1 s)] — judged against the stream's
    {e own} declared throttle interval, not a global constant; [Live]
    otherwise.  [obs tail] shares this detector. *)
module Monitor : sig
  type status = Live | Stalled | Done

  type row = {
    m_file : string;  (** telemetry stream path *)
    m_run_id : string;
    m_shard : string;
    m_trace_id : string;
    m_parent_span_id : string;
    m_seq : int;
    m_elapsed_s : float;
    m_interval_s : float;  (** writer's declared throttle interval *)
    m_age_s : float;  (** now − file mtime *)
    m_final : bool;
    m_registered : bool;  (** run id present in [index.jsonl] *)
    m_shots : int;
    m_rate : float;  (** campaign shots/s; [0.] without a campaign *)
    m_rel_halfwidth : float;  (** worst unfinished task; [nan] when none *)
    m_eta_s : float option;
    m_tasks_done : int;
    m_tasks : int;
    m_alloc_w_per_s : float;  (** minor words/s over the last tick *)
    m_queue_depth : int;
    m_busy_domains : int;
    m_status : status;
  }

  val default_stall_factor : float
  (** 5.0 — five missed heartbeats flag a stall. *)

  val stall_threshold : stall_factor:float -> interval_s:float -> float
  (** [stall_factor × max(interval_s, 1 s)]: the clamp keeps sub-second
      throttle intervals from reading scheduling hiccups as stalls. *)

  val scan :
    ?stall_factor:float -> ?now_unix:float -> dir:string -> unit -> row list
  (** One row per stream with at least one complete record, sorted
      [(shard, run_id)] so coordinator/shard families group together.
      [now_unix] pins the staleness clock (tests). *)

  val status_string : status -> string
  (** ["live"] / ["stalled"] / ["done"]. *)

  val row_json : row -> Json.t
  (** Machine-readable row, schema [hetarch.monitor/1] — the
      [obs monitor --once] output format. *)
end

(** Cross-process union of Chrome-trace JSONL files into one timeline.

    Each input's [ph:"M"] ["hetarch.run"] metadata event carries
    [ts0_unix] — the wall-clock instant of that process's monotonic
    zero — so per-process clocks align by shifting every event onto the
    earliest process's axis: [ts' = ts + (ts0_unix − min ts0_unix) × 1e6]
    µs.  The minimum is order-independent, sources are deduplicated by
    content hash and sorted canonically (run id, then hash), and each
    source is assigned [pid = canonical index + 1] — so the merged bytes
    are identical for any input ordering, and merging a merge's inputs
    again changes nothing.  The output opens with a
    ["hetarch.trace_merge"] metadata event (schema [hetarch.tracemerge/1])
    followed by each source's re-emitted metadata event (with its
    [clock_offset_us]) and shifted span events. *)
module Trace_merge : sig
  type stats = {
    sources : int;  (** after deduplication *)
    events : int;  (** non-metadata events emitted *)
    orphans : string list;
        (** parent span ids referenced by some source but not present among
            the merged sources' span ids — a shard merged without its
            coordinator *)
  }

  val merge : string list -> string * stats
  (** [merge texts] unions raw trace-file contents into one JSONL
      timeline.  Torn trailing lines in the inputs are skipped; raises
      [Failure] if an input has no ["hetarch.run"] metadata event. *)
end

(** Trend-based regression watchdog over registry history.

    Generalizes the single-baseline {!Diff} gate: the current value of each
    metric is judged against the {e median} of the last K runs with a
    median-absolute-deviation noise band —
    [limit = median + max(nmad * 1.4826 * MAD, min_pct% of median)].
    The MAD is robust (one historic outlier cannot shift or widen the
    gate), 1.4826·MAD estimates sigma under normal noise, and the
    [min_pct] floor keeps near-deterministic metrics (MAD ≈ 0) from
    flagging on harmless jitter.  Metrics with fewer than two history
    points are never flagged. *)
module Trend : sig
  type verdict = {
    v_metric : string;
    v_current : float;
    v_median : float;
    v_mad : float;
    v_limit : float;  (** regression boundary; [infinity] on thin history *)
    v_samples : int;  (** history points that carried this metric *)
    v_regression : bool;
  }

  val default_nmad : float
  (** 5.0 — flag only ~5-sigma excursions. *)

  val default_min_pct : float
  (** 10%. *)

  val judge :
    ?nmad:float ->
    ?min_pct:float ->
    ?noise_floor_ns:float ->
    history:(string * float) list list ->
    (string * float) list ->
    verdict list
  (** [judge ~history current] with metric lists as produced by
      {!Diff.metrics_of}.  [noise_floor_ns] (default 0) never flags a
      metric whose current and median values are both below the floor.
      Verdicts are sorted by metric name. *)
end
