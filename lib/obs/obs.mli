(** Observability: process-global metrics, span tracing, and run manifests.

    Three layers, all cheap enough to leave permanently enabled:

    - {b metrics} — a global registry of named counters, gauges, and
      fixed-bucket histograms.  The hot path is a mutable-field bump; no
      allocation, no I/O.  Histograms wrap the [Stats] Welford accumulator
      for streaming mean/variance alongside the bucket counts.
    - {b span tracing} — [Trace.with_span] times a scoped computation on
      the monotonic clock and records it into a bounded in-memory ring
      buffer, exportable as Chrome-trace-compatible JSONL.
    - {b run manifests} — [Report.write] snapshots the whole registry plus
      per-span-name summaries into one JSON document per run.

    Metric names follow the [subsystem.noun_unit] convention
    (e.g. [des.events_total], [pauli.decode_seconds.uf]).  Nothing here
    writes to stdout; exporters only run when explicitly invoked, so
    instrumented programs produce byte-identical output unless asked. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds.  Zero point is arbitrary. *)

val reset : unit -> unit
(** Zero every registered metric in place and clear recorded spans (test
    isolation).  Metric handles stay registered and usable. *)

(** Minimal JSON tree: emitter plus a strict parser, enough to round-trip
    the documents this module writes without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialization.  Floats render via ["%.17g"] so parsing the
      output recovers the exact value. *)

  val parse : string -> t
  (** Strict parse of one JSON value; raises [Failure] on malformed input
      or trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on missing field or non-object. *)

  val to_float : t -> float
  (** Numeric value of [Int] or [Float]; raises [Failure] otherwise. *)
end

(** Monotonically increasing integer metric. *)
module Counter : sig
  type t

  val create : string -> t
  (** Registers (or retrieves — names are interned) the counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Last-written (or high-water) float metric. *)
module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val set_max : t -> float -> unit
  (** Keep the running maximum: [set] only if the new value is greater. *)

  val value : t -> float
  val name : t -> string
end

(** Fixed-bucket histogram with streaming Welford mean/variance. *)
module Histogram : sig
  type t

  val default_buckets : float array
  (** Log-spaced upper bounds from 1 ns to 100 s — suited to durations in
      seconds, the common case here. *)

  val create : ?buckets:float array -> string -> t
  (** [buckets] are strictly increasing upper bounds; samples above the
      last bound land in an overflow bucket.  Interned by name; [buckets]
      is ignored when the name already exists. *)

  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]: bucket-interpolated estimate (linear
      within the bucket holding rank [q * count], edges clamped to the
      observed min/max).  [nan] when empty; raises [Invalid_argument] on
      [q] outside [0, 1]. *)

  val min_value : t -> float
  (** [infinity] when empty. *)

  val max_value : t -> float
  (** [neg_infinity] when empty. *)

  val bucket_counts : t -> (float * int) array
  (** [(upper_bound, count)] pairs, in bound order, excluding overflow. *)

  val overflow : t -> int
  val name : t -> string
end

(** Timed, nested spans in a bounded ring buffer. *)
module Trace : sig
  type span = {
    name : string;
    start_ns : int64;  (** relative to process start of tracing *)
    dur_ns : int64;
    depth : int;  (** 0 = root; nesting depth at entry *)
    attrs : (string * string) list;
  }

  val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, record a completed span (also on exception, which is
      re-raised).  Spans closed after the ring fills overwrite the oldest. *)

  val spans : unit -> span list
  (** Retained spans, in completion order. *)

  val recorded : unit -> int
  (** Total spans ever recorded, including those evicted from the ring. *)

  val summaries : unit -> (string * int * int64) list
  (** Per-name [(name, count, total_ns)] aggregates over {e all} spans,
      sorted by name; unaffected by ring eviction. *)

  val set_capacity : int -> unit
  (** Resize the ring (clears retained spans); default 65536. *)

  val export : path:string -> unit
  (** Write retained spans as JSONL, one Chrome-trace complete event per
      line: [{"name":…,"ph":"X","ts":µs,"dur":µs,"pid":0,"tid":depth,
      "args":{…}}]. *)
end

(** One-document run manifest: the registry plus span summaries.

    Schema [hetarch.obs/2]: adds a [process] section (GC collection and
    allocation counters from [Gc.quick_stat], peak heap words, wall-clock
    run seconds), p50/p90/p99 quantile estimates on every histogram, and
    [p50_ns]/[p90_ns]/[p99_ns] per span name computed over the retained
    trace ring (absent when the ring holds no spans of that name). *)
module Report : sig
  val to_json : unit -> Json.t
  (** Keys sorted within each section for deterministic output. *)

  val write : path:string -> unit
end
