(** Observability: process-global metrics, span tracing, and run manifests.

    Three layers, all cheap enough to leave permanently enabled:

    - {b metrics} — a global registry of named counters, gauges, and
      fixed-bucket histograms.  The hot path is a mutable-field bump; no
      allocation, no I/O.  Histograms wrap the [Stats] Welford accumulator
      for streaming mean/variance alongside the bucket counts.
    - {b span tracing} — [Trace.with_span] times a scoped computation on
      the monotonic clock and records it into a bounded in-memory ring
      buffer, exportable as Chrome-trace-compatible JSONL.
    - {b run manifests} — [Report.write] snapshots the whole registry plus
      per-span-name summaries into one JSON document per run.

    Metric names follow the [subsystem.noun_unit] convention
    (e.g. [des.events_total], [pauli.decode_seconds.uf]).  Nothing here
    writes to stdout; exporters only run when explicitly invoked, so
    instrumented programs produce byte-identical output unless asked. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds.  Zero point is arbitrary. *)

val reset : unit -> unit
(** Zero every registered metric in place and clear recorded spans (test
    isolation).  Metric handles stay registered and usable. *)

(** Minimal JSON tree: emitter plus a strict parser, enough to round-trip
    the documents this module writes without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialization.  Floats render via ["%.17g"] so parsing the
      output recovers the exact value. *)

  val parse : string -> t
  (** Strict parse of one JSON value; raises [Failure] on malformed input
      or trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on missing field or non-object. *)

  val to_float : t -> float
  (** Numeric value of [Int] or [Float]; raises [Failure] otherwise. *)
end

(** Process-level run identity, stamped into every observability artifact
    (run manifests, telemetry records, Chrome-trace exports, snapshots) so
    fleet tooling can correlate the artifacts of one run after the fact. *)
module Run : sig
  val id : unit -> string
  (** Stable 64-bit run id as 16 hex digits: a content hash of argv, pid
      and the process start time, computed once per process.
      [HETARCH_RUN_ID] (16 hex digits) overrides it — used by tests and
      fixtures that need reproducible ids. *)

  val started_unix : float
  (** Wall-clock process start, unix seconds. *)

  val set_shard : string -> unit
  (** Set the free-form shard label ("shard0/3", a host name, ...) carried
      by every artifact; empty by default.  Set once at startup. *)

  val shard : unit -> string

  val json : unit -> Json.t
  (** [{"id": ..., "shard": ...}] — the stamp embedded in documents. *)
end

(** Monotonically increasing integer metric. *)
module Counter : sig
  type t

  val create : string -> t
  (** Registers (or retrieves — names are interned) the counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Last-written (or high-water) float metric. *)
module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val set_max : t -> float -> unit
  (** Keep the running maximum: [set] only if the new value is greater. *)

  val value : t -> float
  val name : t -> string
end

(** Fixed-bucket histogram with streaming Welford mean/variance. *)
module Histogram : sig
  type t

  val default_buckets : float array
  (** Log-spaced upper bounds from 1 ns to 100 s — suited to durations in
      seconds, the common case here. *)

  val create : ?buckets:float array -> string -> t
  (** [buckets] are strictly increasing upper bounds; samples above the
      last bound land in an overflow bucket.  Interned by name; [buckets]
      is ignored when the name already exists. *)

  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]: bucket-interpolated estimate (linear
      within the bucket holding rank [q * count], edges clamped to the
      observed min/max).  With a single sample — or when every sample was
      the same value — returns that exact value.  [nan] when empty; raises
      [Invalid_argument] on [q] outside [0, 1]. *)

  val min_value : t -> float
  (** [infinity] when empty. *)

  val max_value : t -> float
  (** [neg_infinity] when empty. *)

  val bucket_counts : t -> (float * int) array
  (** [(upper_bound, count)] pairs, in bound order, excluding overflow. *)

  val overflow : t -> int
  val name : t -> string
end

(** Timed, nested spans in a bounded ring buffer. *)
module Trace : sig
  type span = {
    name : string;
    start_ns : int64;  (** relative to process start of tracing *)
    dur_ns : int64;
    depth : int;  (** 0 = root; nesting depth at entry *)
    domain : int;  (** id of the domain that recorded the span *)
    path : string;
        (** caller path including the span itself, [";"]-separated — e.g.
            ["cmd.fig6;qec.logical_error_rate"].  Spans recorded inside
            [Parallel] tasks inherit the submitting caller's path, so paths
            are identical at any job count.  Span names should therefore
            avoid [';']. *)
    minor_w : int;
        (** minor-heap words allocated on the recording domain inside the
            span window ([Gc.quick_stat] delta between entry and exit,
            clamped >= 0).  Exact, not sampled: word counters are
            mutator-maintained.  Includes the constant cost of the entry
            sample's own stat record. *)
    promoted_w : int;  (** words promoted minor→major inside the window *)
    major_w : int;  (** words allocated directly on the major heap *)
    attrs : (string * string) list;
  }

  val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, record a completed span (also on exception, which is
      re-raised).  Spans closed after the ring fills overwrite the oldest.
      Entry/exit sample the domain-local GC word counters, so every span
      carries its own allocation alongside its duration. *)

  val spans : unit -> span list
  (** Retained spans, in completion order. *)

  val recorded : unit -> int
  (** Total spans ever recorded, including those evicted from the ring. *)

  val summaries : unit -> (string * int * int64 * int * int * int) list
  (** Per-name [(name, count, total_ns, minor_w, promoted_w, major_w)]
      aggregates over {e all} spans, sorted by name; unaffected by ring
      eviction. *)

  val by_path : unit -> (string * int * int64 * int * int * int) list
  (** Per-caller-path [(path, count, total_ns, minor_w, promoted_w,
      major_w)] aggregates over {e all} spans, sorted by path; unaffected
      by ring eviction.  The profiler's input. *)

  val set_capacity : int -> unit
  (** Resize the ring (clears retained spans); default 65536. *)

  val export : path:string -> unit
  (** Write retained spans as JSONL, one Chrome-trace complete event per
      line: [{"name":…,"ph":"X","ts":µs,"dur":µs,"pid":0,"tid":domain,
      "args":{"depth":…,"path":…,…}}].  [tid] is the recording domain, so
      Perfetto renders one track per domain; nesting depth and the caller
      path travel in [args]. *)
end

(** Call-tree profiler over caller-path-keyed span aggregates.

    Cumulative time is summed per exact caller path; {e self} time is
    cumulative minus the cumulative time of direct children, so self times
    telescope — summed over the whole tree they equal the root spans'
    cumulative time exactly (up to clamping of clock jitter).  Minor-word
    allocation telescopes by the identical rule ([self_w] = [cum_w] minus
    direct children's [cum_w]), attributing every allocated word to the
    innermost span that allocated it.  All renderings sort
    lexicographically by path and are therefore deterministic regardless of
    span completion order across domains. *)
module Profile : sig
  type node = {
    path : string;  (** full [";"]-separated caller path *)
    name : string;  (** leaf segment of [path] *)
    count : int;
    cum_ns : int64;
    self_ns : int64;  (** [cum_ns] minus direct children's [cum_ns], >= 0 *)
    cum_w : int;  (** cumulative minor words under this path *)
    self_w : int;
        (** [cum_w] minus direct children's [cum_w], clamped >= 0 (a parent
            whose children ran on other domains never saw their words) *)
    children : node list;  (** sorted by name *)
  }

  val tree : unit -> node list
  (** Roots of the call tree aggregated from {!Trace.by_path}. *)

  val of_totals : (string * int * int64 * int * int * int) list -> node list
  (** Build a tree from explicit [(path, count, total_ns, minor_w,
      promoted_w, major_w)] aggregates, e.g. re-aggregated from an exported
      trace file.  Paths appearing without their parent produce implicit
      zero-count interior nodes. *)

  val folded : ?weight:[ `Self_ns | `Count | `Self_alloc ] -> node list -> string
  (** Folded-stack text ([root;child;leaf weight], one line per node with a
      positive weight, sorted by path) — the input format of flamegraph.pl
      and speedscope.  [`Self_ns] (default) weights by self nanoseconds;
      [`Count] weights by span count, which is byte-identical across
      [--jobs] settings for a deterministic workload; [`Self_alloc] weights
      by self minor words — exact counts, byte-identical across runs and
      [--jobs] for workloads whose spans execute sequentially. *)

  val top :
    ?sort:[ `Self | `Cum | `Count | `Alloc ] -> ?limit:int -> node list -> node list
  (** Flattened nodes ranked descending by the sort key — self time
      (default), cumulative time, span count, or self minor words — with
      path as tiebreak. *)

  val top_table :
    ?sort:[ `Self | `Cum | `Count | `Alloc ] -> ?limit:int -> node list -> string
  (** Rendered table (self ms, count, cumulative ms, self%, self words,
      path); [limit] defaults to 20, [sort] to self time. *)
end

(** Append-only JSONL telemetry heartbeat, schema [hetarch.telemetry/3]
    (v2 added the {!Run} stamp to every record; v3 adds the minor-words
    allocation delta to the [gc] section and a [gc.minor_words_per_s] rate).

    One record per tick: monotonic elapsed seconds, every counter's value
    and its delta since the previous record (plus derived per-second rates),
    GC minor/major deltas and the allocation-words delta (clamped >= 0),
    and — when a campaign registered a progress provider — per-task
    progress (shots, errors, Wilson half-width, remaining shots) and a
    campaign ETA at the current rate.

    Ticks are driven {e synchronously} from [Parallel] chunk boundaries and
    [Collect] batch completions; there is no background thread, so enabling
    telemetry cannot change any computed result.  A disabled tick costs one
    atomic load; an enabled one is throttled to the configured interval. *)
module Telemetry : sig
  type task_progress = {
    tp_id : string;
    tp_kind : string;
    tp_shots : int;
    tp_errors : int;
    tp_resumed : int;  (** shots replayed from a ledger *)
    tp_rel_halfwidth : float;  (** [nan] when undefined (zero errors) *)
    tp_remaining : int;  (** shots to the task's ceiling; 0 once stopped *)
    tp_done : bool;
  }

  type campaign = {
    c_elapsed_s : float;  (** since the provider registered *)
    c_done : int;
    c_total : int;
    c_shots : int;  (** merged, including resumed *)
    c_new_shots : int;  (** sampled by this run *)
    c_rate : float;  (** new shots per second *)
    c_remaining : int;
    c_eta_s : float option;
    c_tasks : task_progress list;
  }

  val enable : path:string -> interval_s:float -> unit
  (** Open (truncating) [path], write a baseline record (seq 0), and start
      accepting ticks at most every [interval_s] seconds ([0.] = every
      tick).  Re-enabling closes the previous sink first. *)

  val disable : unit -> unit
  (** Write one final forced record and close the sink.  No-op when
      telemetry was never enabled.  Also installed as an [at_exit] hook by
      {!enable}, so a run that exits between ticks (including via [exit]
      deep inside a command) still leaves a complete final heartbeat. *)

  val enabled : unit -> bool

  val tick : ?force:bool -> unit -> unit
  (** Append a record if enabled and the interval has elapsed ([force]
      bypasses the throttle).  Domain-safe. *)

  val set_campaign : (unit -> task_progress list) option -> unit
  (** Register (or clear) the campaign progress provider and restart the
      campaign clock.  The provider is called at each tick and by
      {!campaign_snapshot}; it must be cheap and domain-safe. *)

  val campaign_snapshot : unit -> campaign option
  (** Aggregate the provider's current task list into campaign totals, rate
      and ETA — the single code path behind both the telemetry records and
      the collect [--progress] line.  [None] when no provider is set. *)

  val reset_baseline : unit -> unit
  (** Forget the counter/GC delta baseline (done by [Obs.reset]) so the
      next record's deltas measure from zero rather than going negative. *)
end

(** Manifest and bench comparison: a perf-regression gate.

    Extracts the worse-when-higher metrics of two parsed documents — kernel
    ns/run from [hetarch.bench/*]; span [total_ns], span minor-word totals
    (as [alloc:<name>], when present) and histogram means from
    [hetarch.obs/*], [hetarch.snapshot/*] and [hetarch.fleet/*] — and flags
    relative regressions past a threshold.  The alloc metrics feed the
    {!Trend} watchdog, so allocation regressions gate like time ones. *)
module Diff : sig
  type entry = {
    metric : string;
    a : float;
    b : float;
    pct : float;  (** [100 * (b - a) / a]; [0.] when both sides are zero *)
    regression : bool;
  }

  type result = {
    entries : entry list;  (** metric intersection, sorted by name *)
    regressions : entry list;  (** past the threshold, worst first *)
    only_a : string list;  (** metrics present only in the first document *)
    only_b : string list;
    scale : float;
        (** Divisor applied to every current value before comparison: the
            median current/baseline ratio when [normalize] was set,
            [1.] otherwise. *)
  }

  val default_threshold_pct : float
  (** 20%. *)

  val metrics_of : Json.t -> (string * float) list
  (** Raises [Failure] on an unrecognized schema. *)

  val compare_docs :
    ?threshold_pct:float ->
    ?noise_floor_ns:float ->
    ?normalize:bool ->
    Json.t ->
    Json.t ->
    result
  (** [compare_docs a b] treats [a] as the baseline.

      [noise_floor_ns] (default 0): metrics whose baseline and current
      values are both below the floor stay listed but are never flagged
      as regressions — relative thresholds are meaningless under the
      machine's scheduling noise.

      [normalize] (default false): divide every current value by the
      median current/baseline ratio across the common metrics before
      comparing, cancelling a uniform machine-speed difference between
      the two documents; a genuine single-metric regression moves against
      the median and survives normalization.  Use when gating CI runners
      against a baseline produced on different hardware. *)
end

(** One-document run manifest: the registry plus span summaries.

    Schema [hetarch.obs/4] (v4 adds per-span-name [minor_w]/[promoted_w]/
    [major_w] allocation totals): a [run] stamp ({!Run.json}), a [process]
    section (GC collection and allocation counters from [Gc.quick_stat],
    peak heap words, wall-clock run seconds), p50/p90/p99 quantile
    estimates on every histogram, and [p50_ns]/[p90_ns]/[p99_ns] per span
    name computed over the retained trace ring (absent when the ring holds
    no spans of that name). *)
module Report : sig
  val to_json : unit -> Json.t
  (** Keys sorted within each section for deterministic output. *)

  val write : path:string -> unit
end

(** Complete, versioned, content-hashed serialization of one process's obs
    state — the unit of fleet-scale aggregation (schema
    [hetarch.snapshot/2]; v1 documents still parse, their absent alloc
    fields defaulting to zero).

    Where the {!Report} manifest is a human-facing summary with lossy
    derived quantities (quantile estimates, variance), a snapshot carries
    the {e raw mergeable state}: integer bucket counts, Welford
    [(count, mean, m2)] triples, per-span-name and per-caller-path
    aggregates including raw allocation words (the path aggregates
    reconstruct the profile trie — time and allocation — exactly via
    {!Profile.of_totals}), the GC/process section, and run metadata (run
    id, shard label, argv, wall span, jobs).

    Serialization is canonical — sections sorted by name, floats emitted in
    round-tripping form — so [of_json] ∘ [to_json] is the identity and the
    content hash (computed over the serialization minus the hash field
    itself) is well defined.  The record type is exposed so tests and
    benches can build synthetic snapshots. *)
module Snapshot : sig
  type hist = {
    h_bounds : float array;  (** bucket upper bounds, as configured *)
    h_counts : int array;  (** raw per-bucket counts *)
    h_overflow : int;
    h_count : int;
    h_mean : float;
    h_m2 : float;  (** Welford sum of squared deviations from the mean *)
    h_min : float;  (** [infinity] when empty *)
    h_max : float;  (** [neg_infinity] when empty *)
  }

  type process = {
    p_minor_collections : int;
    p_major_collections : int;
    p_compactions : int;
    p_minor_words : float;
    p_promoted_words : float;
    p_major_words : float;
    p_heap_words : int;
    p_top_heap_words : int;
  }

  type t = {
    run_id : string;
    shard : string;
    argv : string list;
    started_unix : float;
    wall_seconds : float;
    jobs : int;
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * float) list;
    histograms : (string * hist) list;
    spans : (string * int * int64 * int * int * int) list;
        (** (name, count, total_ns, minor_w, promoted_w, major_w) *)
    paths : (string * int * int64 * int * int * int) list;
        (** profile trie, keyed by path; same aggregate shape *)
    process : process;
  }

  val schema : string

  val schema_v1 : string
  (** The pre-allocation schema string, still accepted by {!of_json}. *)

  val capture : unit -> t
  (** Snapshot the whole registry plus trace aggregates, process stats and
      run metadata.  Histograms are read under their locks; domain-safe. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> t
  (** Raises [Failure] on an unrecognized schema or a malformed document. *)

  val content_hash : t -> string
  (** 16-hex-digit hash of the canonical serialization (excluding the
      [content_hash] field itself). *)

  val write : path:string -> t -> unit
  (** Atomic: temp file in the destination directory, then rename — a kill
      mid-write never leaves a torn snapshot. *)

  val load : string -> t
end

(** Deterministic, order-insensitive union of snapshots into one fleet view
    (schema [hetarch.fleet/2]; v1 documents still flatten via {!of_json}).

    The merged document embeds its full source snapshots and recomputes
    every aggregate by folding them in a canonical order (run id, then
    content hash, duplicates removed) — so the output is {e byte-identical}
    regardless of merge order, merge grouping, or the [--jobs] setting of
    the source processes, even though float addition itself is not
    associative.  Counters and span/path aggregates (times and allocation
    words alike) sum; histograms
    bucket-merge and combine Welford states exactly (Chan's parallel
    update), raising [Failure] on mismatched bucket bounds; gauges — not
    meaningfully summable across processes — carry per-source values with
    n/sum/min/max; the process section sums, keeping the max peak heap. *)
module Merge : sig
  type t

  val schema : string

  val of_snapshots : Snapshot.t list -> t
  val union : t -> t -> t
  (** Commutative, associative and idempotent up to byte equality of
      [to_json]. *)

  val sources : t -> Snapshot.t list
  (** Deduplicated sources in canonical order. *)

  val to_json : t -> Json.t

  val of_json : Json.t -> t
  (** Accepts a snapshot document or a fleet document (flattened back to
      its sources, so merging merged documents is exact). *)
end

(** Append-only run registry under [HETARCH_OBS_DIR].

    Layout: [<dir>/snapshots/<run_id>.json] (atomic writes) plus
    [<dir>/index.jsonl] with one line per recorded run.  Appends are
    single flushed lines, so concurrent shard processes interleave whole
    records; replay skips blank and torn lines like the collect ledger. *)
module Registry : sig
  type entry = {
    e_run_id : string;
    e_shard : string;
    e_cmd : string;  (** leading non-flag argv words, e.g. ["collect uec"] *)
    e_file : string;  (** snapshot file name relative to [<dir>/snapshots] *)
    e_hash : string;  (** snapshot content hash *)
    e_unix : float;  (** run start, unix seconds *)
  }

  val cmd_of_argv : string list -> string
  (** The command key index entries group runs under: the leading non-flag
      argv words after the executable (e.g. ["collect uec"]), falling back
      to the executable basename. *)

  val set_dir : string option -> unit
  (** Override the registry directory ([Some dir]), or fall back to the
      [HETARCH_OBS_DIR] environment variable ([None], the default). *)

  val dir : unit -> string option
  (** Effective registry directory; [None] disables the registry. *)

  val record : ?dir:string -> Snapshot.t -> entry option
  (** Write the snapshot into the registry and append an index entry.
      [None] when no directory is configured. *)

  val entries : ?dir:string -> unit -> entry list
  (** Index entries in append order; [] without a configured directory. *)

  val load : ?dir:string -> entry -> Snapshot.t

  val find : ?dir:string -> string -> entry option
  (** Latest entry whose run id starts with the given prefix; [None] on no
      match; raises [Failure] when the prefix matches several run ids. *)
end

(** Trend-based regression watchdog over registry history.

    Generalizes the single-baseline {!Diff} gate: the current value of each
    metric is judged against the {e median} of the last K runs with a
    median-absolute-deviation noise band —
    [limit = median + max(nmad * 1.4826 * MAD, min_pct% of median)].
    The MAD is robust (one historic outlier cannot shift or widen the
    gate), 1.4826·MAD estimates sigma under normal noise, and the
    [min_pct] floor keeps near-deterministic metrics (MAD ≈ 0) from
    flagging on harmless jitter.  Metrics with fewer than two history
    points are never flagged. *)
module Trend : sig
  type verdict = {
    v_metric : string;
    v_current : float;
    v_median : float;
    v_mad : float;
    v_limit : float;  (** regression boundary; [infinity] on thin history *)
    v_samples : int;  (** history points that carried this metric *)
    v_regression : bool;
  }

  val default_nmad : float
  (** 5.0 — flag only ~5-sigma excursions. *)

  val default_min_pct : float
  (** 10%. *)

  val judge :
    ?nmad:float ->
    ?min_pct:float ->
    ?noise_floor_ns:float ->
    history:(string * float) list list ->
    (string * float) list ->
    verdict list
  (** [judge ~history current] with metric lists as produced by
      {!Diff.metrics_of}.  [noise_floor_ns] (default 0) never flags a
      metric whose current and median values are both below the floor.
      Verdicts are sorted by metric name. *)
end
