type perf = { duration : float; error : float }

let fidelity p = 1. -. p.error

type gate_times = { t1q : float; t2q : float; t_readout : float }

let paper_times = { t1q = 40e-9; t2q = 100e-9; t_readout = 1e-6 }

let clamp01 x = max 0. (min 1. x)

(* Entanglement (process) fidelity of a single-qubit process: prepare a Bell
   pair with a noiseless reference, push one half through the process, and
   compare against the ideal Bell state. *)
let choi_fidelity_1q apply =
  let dm = Dm.bell_pair () in
  (* qubit 0 = reference (untouched), qubit 1 = system *)
  apply dm 1;
  clamp01 (Dm.fidelity_bell dm)

let register_load ?(times = paper_times) cell =
  ignore times;
  let storage = Cell.storage_exn cell in
  let compute = cell.Cell.compute in
  let swap_time = storage.Device.gate_time in
  let swap_error = storage.Device.gate_error in
  let f =
    choi_fidelity_1q (fun dm q ->
        (* decoherence of the travelling qubit during the SWAP (limited by
           the compute device it is leaving) plus the SWAP's own error *)
        Dm.idle dm ~t1:compute.Device.t1 ~t2:compute.Device.t2 ~dt:swap_time [ q ];
        Dm.apply_channel dm (Channel.depolarizing1 swap_error) [ q ])
  in
  { duration = swap_time; error = clamp01 (1. -. f) }

let register_retention cell ~dt =
  let storage = Cell.storage_exn cell in
  let f =
    choi_fidelity_1q (fun dm q ->
        Dm.idle dm ~t1:storage.Device.t1 ~t2:storage.Device.t2 ~dt [ q ])
  in
  { duration = dt; error = clamp01 (1. -. f) }

let compute_idle device ~dt =
  let f =
    choi_fidelity_1q (fun dm q ->
        Dm.idle dm ~t1:device.Device.t1 ~t2:device.Device.t2 ~dt [ q ])
  in
  { duration = dt; error = clamp01 (1. -. f) }

(* ParCheck: data qubits 0 and 1, readout device 2.  The ancilla accumulates
   the parity through two CXs and is measured.  Error = 1 - average over the
   four computational inputs of P(correct parity and data intact). *)
let parity_check ?(times = paper_times) cell =
  let compute = cell.Cell.compute in
  let p2 = compute.Device.gate_error in
  let duration = (2. *. times.t2q) +. times.t_readout in
  let avg_ok = ref 0. in
  for input = 0 to 3 do
    let dm = Dm.create 3 in
    if input land 2 <> 0 then Dm.apply_unitary dm Gate.x [ 0 ];
    if input land 1 <> 0 then Dm.apply_unitary dm Gate.x [ 1 ];
    let idle_step dt qs =
      List.iter
        (fun q -> Dm.idle dm ~t1:compute.Device.t1 ~t2:compute.Device.t2 ~dt [ q ])
        qs
    in
    Dm.apply_unitary dm Gate.cx [ 0; 2 ];
    Dm.apply_channel dm (Channel.depolarizing2 p2) [ 0; 2 ];
    idle_step times.t2q [ 0; 1; 2 ];
    Dm.apply_unitary dm Gate.cx [ 1; 2 ];
    Dm.apply_channel dm (Channel.depolarizing2 p2) [ 1; 2 ];
    idle_step times.t2q [ 0; 1; 2 ];
    (* data idles through the readout *)
    idle_step times.t_readout [ 0; 1 ];
    let parity = (input lxor (input lsr 1)) land 1 in
    (* probability that the full register reads (input, parity) *)
    let want = (input lsl 1) lor parity in
    let amps = Array.make 8 Complex.zero in
    amps.(want) <- Complex.one;
    avg_ok := !avg_ok +. Dm.fidelity_pure dm amps
  done;
  { duration; error = clamp01 (1. -. (!avg_ok /. 4.)) }

(* SeqOp: two stored qubits are loaded into their register computes, undergo
   [count] CX gates, and are stored back.  Process fidelity on a two-qubit
   Choi state: qubits 0,1 reference; 2,3 system. *)
let sequential_cnots ?(times = paper_times) cell ~count =
  if count < 1 then invalid_arg "Characterize.sequential_cnots: count >= 1";
  let storage = Cell.storage_exn cell in
  let compute = cell.Cell.compute in
  let p2 = compute.Device.gate_error in
  let swap_err = storage.Device.gate_error and swap_t = storage.Device.gate_time in
  let dm = Dm.create 4 in
  (* Build two reference Bell pairs (0,2) and (1,3). *)
  Dm.apply_unitary dm Gate.h [ 0 ];
  Dm.apply_unitary dm Gate.cx [ 0; 2 ];
  Dm.apply_unitary dm Gate.h [ 1 ];
  Dm.apply_unitary dm Gate.cx [ 1; 3 ];
  let idle_sys dt =
    List.iter
      (fun q -> Dm.idle dm ~t1:compute.Device.t1 ~t2:compute.Device.t2 ~dt [ q ])
      [ 2; 3 ]
  in
  (* load from storage *)
  List.iter (fun q -> Dm.apply_channel dm (Channel.depolarizing1 swap_err) [ q ]) [ 2; 3 ];
  idle_sys swap_t;
  for _ = 1 to count do
    Dm.apply_unitary dm Gate.cx [ 2; 3 ];
    Dm.apply_channel dm (Channel.depolarizing2 p2) [ 2; 3 ];
    idle_sys times.t2q
  done;
  (* store back *)
  List.iter (fun q -> Dm.apply_channel dm (Channel.depolarizing1 swap_err) [ q ]) [ 2; 3 ];
  idle_sys swap_t;
  (* undo the ideal CNOTs so the target is the identity channel *)
  if count mod 2 = 1 then Dm.apply_unitary dm Gate.cx [ 2; 3 ];
  (* fidelity against the two ideal Bell pairs *)
  let b = 1. /. sqrt 2. in
  let amps = Array.make 16 Complex.zero in
  (* |phi+>_{02} |phi+>_{13}: basis q0 q1 q2 q3 *)
  List.iter
    (fun (q0, q1) ->
      let idx = (q0 lsl 3) lor (q1 lsl 2) lor (q0 lsl 1) lor q1 in
      amps.(idx) <- { Complex.re = b *. b; im = 0. })
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  let f = clamp01 (Dm.fidelity_pure dm amps) in
  { duration = (2. *. swap_t) +. (float_of_int count *. times.t2q);
    error = clamp01 (1. -. f) }

let stabilizer_check ?(times = paper_times) cell ~weight ~serialized =
  if weight < 1 then invalid_arg "Characterize.stabilizer_check: weight >= 1";
  let storage = Cell.storage_exn cell in
  let compute = cell.Cell.compute in
  let load = register_load ~times cell in
  let w = float_of_int weight in
  (* Each data qubit: swap out, CX with ancilla, swap back.  Serialized
     execution strings these end to end; parallel execution overlaps the
     swaps across registers (bounded by the per-register port). *)
  let per_qubit_time = (2. *. load.duration) +. times.t2q in
  let gate_path_time =
    if serialized then w *. per_qubit_time else per_qubit_time +. ((w -. 1.) *. times.t2q)
  in
  let duration = gate_path_time +. times.t_readout in
  (* Error composition: each touched qubit suffers two SWAPs and one CX; the
     ancilla suffers w CXs; every stored spectator waits out the full
     duration in storage. *)
  let cx_err = compute.Device.gate_error in
  let swap_err = load.error in
  let ancilla_idle = compute_idle compute ~dt:gate_path_time in
  let touched_err = 1. -. (((1. -. swap_err) ** 2.) *. (1. -. cx_err)) in
  let combine acc e = acc +. e -. (acc *. e) in
  let spectator = register_retention cell ~dt:duration in
  ignore storage;
  let error =
    List.fold_left combine 0.
      [ 1. -. ((1. -. touched_err) ** w); ancilla_idle.error; spectator.error ]
  in
  { duration; error = clamp01 error }

let retention_with_spectators cell ~modes ~dt ~trajectories rng =
  if modes < 1 then invalid_arg "Characterize.retention_with_spectators: modes >= 1";
  let storage = Cell.storage_exn cell in
  if modes > storage.Device.capacity then
    invalid_arg "Characterize.retention_with_spectators: more modes than capacity";
  let n = modes + 1 in
  (* qubit 0 = noiseless reference, qubit 1 = tracked system, 2.. = spectator
     modes in non-trivial states *)
  let target = Sv.create n in
  Sv.apply_unitary target Gate.h [ 0 ];
  Sv.apply_unitary target Gate.cx [ 0; 1 ];
  for q = 2 to n - 1 do
    Sv.apply_unitary target (Gate.ry (0.3 +. (0.4 *. float_of_int q))) [ q ]
  done;
  let f =
    Sv.average_fidelity
      ~prepare:(fun () -> Sv.copy target)
      ~evolve:(fun psi rng ->
        for q = 1 to n - 1 do
          Sv.idle_trajectory psi ~t1:storage.Device.t1 ~t2:storage.Device.t2 ~dt q rng
        done)
      ~target ~trajectories rng
  in
  (* The target includes the spectators, whose own decay reduces global
     fidelity; project out their contribution by dividing by their survival,
     measured the same way on a spectator-only experiment. *)
  let spectator_target = Sv.create n in
  for q = 2 to n - 1 do
    Sv.apply_unitary spectator_target (Gate.ry (0.3 +. (0.4 *. float_of_int q))) [ q ]
  done;
  let f_spec =
    Sv.average_fidelity
      ~prepare:(fun () -> Sv.copy spectator_target)
      ~evolve:(fun psi rng ->
        for q = 2 to n - 1 do
          Sv.idle_trajectory psi ~t1:storage.Device.t1 ~t2:storage.Device.t2 ~dt q rng
        done)
      ~target:spectator_target ~trajectories rng
  in
  let f_sys = if f_spec > 1e-9 then Float.min 1. (f /. f_spec) else 0. in
  { duration = dt; error = clamp01 (1. -. f_sys) }

let simulation_dimension cell =
  1 lsl Cell.capacity cell

(* ------------------------------------------- channel characterization -- *)

(* The paper's §3.2 workflow as a first-class value: each characterizable
   operation yields both its perf record and the effective quantum channel
   module-level simulators consume.  The pair is what the DSE layer
   memoizes — in memory and, through the persistent store, across process
   restarts — keyed by a content hash of everything below that influences
   the result. *)

type op =
  | Load
  | Retention of { dt : float }
  | Idle of { dt : float }
  | Parity_check
  | Seq_cnots of { count : int }
  | Stabilizer of { weight : int; serialized : bool }

type characterized = { perf : perf; channel : Channel.t }

(* Dependency inversion: lib/cell sits below the DSE layer, so the cache
   and persistent store reach characterization through this hook rather
   than the other way around.  The hook receives a content-complete key
   (kind + fields) and the simulation dimension for cost accounting. *)
type memo = {
  memoize :
    kind:string ->
    fields:(string * string) list ->
    dim:int ->
    (unit -> characterized) ->
    characterized;
}

let no_memo = { memoize = (fun ~kind:_ ~fields:_ ~dim:_ f -> f ()) }

let op_name = function
  | Load -> "load"
  | Retention _ -> "retention"
  | Idle _ -> "idle"
  | Parity_check -> "parity_check"
  | Seq_cnots _ -> "seq_cnots"
  | Stabilizer _ -> "stabilizer"

(* Active simulation subspace per op (moving qubit + Choi references, gate
   participants, ancilla) — the same accounting Burden.active_qubits uses;
   idle storage modes factor out of the density matrix exactly. *)
let op_active_qubits = function
  | Load | Retention _ | Idle _ -> 2
  | Parity_check -> 3
  | Seq_cnots _ -> 4
  | Stabilizer _ -> 5

let op_dim op = 1 lsl op_active_qubits op

(* %.17g round-trips every finite float64, so distinct device settings
   always produce distinct key fields. *)
let gf = Printf.sprintf "%.17g"

let device_fields prefix (d : Device.t) =
  [ (prefix ^ ".name", d.Device.name);
    (prefix ^ ".t1", gf d.Device.t1);
    (prefix ^ ".t2", gf d.Device.t2);
    (prefix ^ ".gate_error", gf d.Device.gate_error);
    (prefix ^ ".gate_time", gf d.Device.gate_time);
    (prefix ^ ".capacity", string_of_int d.Device.capacity) ]

(* Cell topology digest: instance device names/readout flags plus the
   coupling and port lists, in declaration order.  Numerically the perf
   functions only read the storage/compute device parameters, but the
   topology is part of the characterization input (a rewired cell is a
   different cell), so it belongs in the key. *)
let topology_string (cell : Cell.t) =
  let g = cell.Cell.graph in
  let insts =
    Array.to_list g.Design_rules.instances
    |> List.map (fun i ->
           Printf.sprintf "%d:%s%s" i.Design_rules.id
             i.Design_rules.device.Device.name
             (if i.Design_rules.readout then "*" else ""))
  in
  let pairs = List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) in
  String.concat ","
    (insts @ pairs g.Design_rules.couplings @ pairs g.Design_rules.ports)

let op_fields op =
  ("op", op_name op)
  ::
  (match op with
  | Load | Parity_check -> []
  | Retention { dt } | Idle { dt } -> [ ("dt", gf dt) ]
  | Seq_cnots { count } -> [ ("count", string_of_int count) ]
  | Stabilizer { weight; serialized } ->
      [ ("weight", string_of_int weight);
        ("serialized", string_of_bool serialized) ])

let key_fields ?(times = paper_times) cell op =
  [ ("cell", Cell.name cell);
    ("topology", topology_string cell);
    ("t1q", gf times.t1q);
    ("t2q", gf times.t2q);
    ("t_readout", gf times.t_readout) ]
  @ (match cell.Cell.storage with
    | Some s -> device_fields "storage" s
    | None -> [])
  @ device_fields "compute" cell.Cell.compute
  @ op_fields op

(* Effective channel per op.  The single-qubit register operations are
   exact Kraus compositions of the very processes the density-matrix
   characterization simulates; the multi-qubit operations are abstracted as
   Pauli-twirled depolarizing channels at the simulated error probability —
   the standard channel abstraction the module-level simulators consume. *)
let op_channel cell op (p : perf) =
  match op with
  | Load ->
      let storage = Cell.storage_exn cell in
      let compute = cell.Cell.compute in
      Channel.compose
        (Channel.idle ~t1:compute.Device.t1 ~t2:compute.Device.t2
           ~dt:storage.Device.gate_time)
        (Channel.depolarizing1 storage.Device.gate_error)
  | Retention { dt } ->
      let storage = Cell.storage_exn cell in
      Channel.idle ~t1:storage.Device.t1 ~t2:storage.Device.t2 ~dt
  | Idle { dt } ->
      let compute = cell.Cell.compute in
      Channel.idle ~t1:compute.Device.t1 ~t2:compute.Device.t2 ~dt
  | Parity_check | Seq_cnots _ -> Channel.depolarizing2 (min 1. p.error)
  | Stabilizer _ -> Channel.depolarizing1 (min 1. p.error)

let op_perf ~times cell op =
  match op with
  | Load -> register_load ~times cell
  | Retention { dt } -> register_retention cell ~dt
  | Idle { dt } -> compute_idle cell.Cell.compute ~dt
  | Parity_check -> parity_check ~times cell
  | Seq_cnots { count } -> sequential_cnots ~times cell ~count
  | Stabilizer { weight; serialized } -> stabilizer_check ~times cell ~weight ~serialized

let characterize_op ?(times = paper_times) ?(memo = no_memo) cell op =
  memo.memoize ~kind:"cell_char" ~fields:(key_fields ~times cell op)
    ~dim:(op_dim op)
    (fun () ->
      let perf = op_perf ~times cell op in
      { perf; channel = op_channel cell op perf })
