(** Standard-cell characterization by device-level density-matrix simulation
    (paper §3.2: "performance of a given standard cell is characterized
    through density matrix simulations at the device level ... then used to
    model each standard cell as a quantum channel").

    Each operation returns a {!perf} record — a channel abstraction of the
    cell (duration plus error probability) that module-level simulators
    consume without ever re-simulating the devices.  The number of density-
    matrix simulations this saves is what the DSE layer accounts for. *)

type perf = {
  duration : float;  (** seconds *)
  error : float;  (** process infidelity of the operation, in [0,1] *)
}

val fidelity : perf -> float
(** 1 - error. *)

type gate_times = {
  t1q : float;  (** single-qubit gate time (paper: 40 ns) *)
  t2q : float;  (** two-qubit gate and SWAP time between computes (100 ns) *)
  t_readout : float;  (** readout time (1 us) *)
}

val paper_times : gate_times

val register_load : ?times:gate_times -> Cell.t -> perf
(** Moving one qubit from the Register's compute device into storage: the
    storage SWAP gate's own error and duration, plus decoherence during it.
    Simulated exactly on a Choi (reference-entangled) state. *)

val register_retention : Cell.t -> dt:float -> perf
(** Error accumulated by a qubit idling in the storage device for [dt]. *)

val compute_idle : Device.t -> dt:float -> perf
(** Idling on a compute device. *)

val parity_check : ?times:gate_times -> Cell.t -> perf
(** ParCheck operation on two data qubits already in the cell: two CX into
    the readout device plus measurement; error is the probability the parity
    outcome is wrong or a data qubit is corrupted, averaged over the
    computational basis, from a 3-qubit density-matrix simulation. *)

val sequential_cnots : ?times:gate_times -> Cell.t -> count:int -> perf
(** SeqOp operation: [count] back-to-back CX gates between the two register
    compute devices (CAT-state growth), including load/unload from storage.
    Simulated on a 4-qubit Choi state (two system + two reference qubits). *)

val stabilizer_check :
  ?times:gate_times -> Cell.t -> weight:int -> serialized:bool -> perf
(** USC operation: one weight-[weight] stabilizer measurement with data
    qubits living in the registers.  With [serialized] = true each data qubit
    is swapped out of storage, gated with the ancilla, and swapped back, one
    after another (the UEC trade-off of §4.2.2); otherwise only the gates are
    serialized.  Composed from simulated primitives. *)

val retention_with_spectators :
  Cell.t -> modes:int -> dt:float -> trajectories:int -> Rng.t -> perf
(** Retention of one stored qubit while [modes - 1] other occupied modes of
    the same resonator idle alongside it, simulated on the full
    [modes + 1]-qubit statevector with Monte-Carlo noise trajectories.
    Validates the factorization assumption behind {!simulation_dimension}
    and the DSE burden accounting: the result must match
    {!register_retention} regardless of [modes] (asserted in the test
    suite). *)

val simulation_dimension : Cell.t -> int
(** Hilbert-space dimension a naive device-level simulation of the full cell
    would need — the denominator of the DSE burden-reduction accounting. *)

(** {1 Channel characterization}

    First-class description of the characterizable operations, so the DSE
    layer can memoize results — in memory and across process restarts via
    the persistent store — keyed by a content hash of the full
    characterization input. *)

type op =
  | Load  (** {!register_load} *)
  | Retention of { dt : float }  (** {!register_retention} *)
  | Idle of { dt : float }  (** {!compute_idle} on the cell's compute *)
  | Parity_check  (** {!parity_check} *)
  | Seq_cnots of { count : int }  (** {!sequential_cnots} *)
  | Stabilizer of { weight : int; serialized : bool }  (** {!stabilizer_check} *)

type characterized = {
  perf : perf;
  channel : Channel.t;
      (** Effective channel abstraction of the operation: exact Kraus
          composition for the single-qubit register operations, a
          Pauli-twirled depolarizing channel at the simulated error for the
          multi-qubit ones. *)
}

(** Memoization hook, injected by the DSE layer (lib/cell sits below it in
    the dependency order).  [kind]/[fields] are a content-complete
    description of the characterization input — cell name and topology,
    storage/compute device parameters, gate times, op parameters — and
    [dim] is the active simulation dimension for burden accounting. *)
type memo = {
  memoize :
    kind:string ->
    fields:(string * string) list ->
    dim:int ->
    (unit -> characterized) ->
    characterized;
}

val no_memo : memo
(** Computes every time; the default. *)

val op_name : op -> string
val op_dim : op -> int
(** Active-subspace Hilbert dimension of the op's density-matrix
    simulation (same accounting as [Burden.active_qubits]). *)

val key_fields : ?times:gate_times -> Cell.t -> op -> (string * string) list
(** The content-complete key the memo hook receives — exposed so tests can
    pin key stability. *)

val characterize_op :
  ?times:gate_times -> ?memo:memo -> Cell.t -> op -> characterized
(** Characterize one operation of a cell, routing through [memo] so repeat
    characterizations hit the cache (and the persistent store, when one is
    installed) instead of re-running density-matrix simulation. *)
