(** DEM-direct bit-parallel sampler.

    [Frame_batch] re-simulates the whole Clifford circuit for every batch;
    for repeated logical-error-rate estimation that work is pure overhead —
    the circuit's effect on the detectors is fully captured by its detector
    error model.  This module compiles a circuit once into its merged DEM
    (the move Stim makes) and then samples batches by drawing one Bernoulli
    mask per mechanism and XOR-ing it into the mechanism's detector and
    observable bit-planes.  Per batch the cost is
    O(mechanisms * (p * shots + rows touched)) instead of
    O(gates * shots / 63) — circuit re-simulation is skipped entirely.

    Sampling semantics: mechanisms fire as independent coins.  The circuit's
    categorical noise channels (Noise1, Depol2) are mutually exclusive
    within one site, so the two samplers' distributions differ at O(p^2) per
    site — exact on noiseless circuits, statistically indistinguishable at
    the paper's noise scales (cross-validated in test/). *)

type t

val compile : Circuit.t -> t
(** Extract, merge ({!Dem.of_circuit}) and canonically order the circuit's
    error mechanisms.  Mechanisms are sorted by (detectors, obs_mask), so
    the sampling stream for a given seed is independent of hash-table
    iteration order and stable across save/load. *)

val of_mechanisms : ndet:int -> nobs:int -> Dem.mechanism list -> t
(** Package pre-extracted mechanisms (canonically re-sorted here) with the
    detector/observable counts; the deserialization entry point. *)

val ndet : t -> int
val nobs : t -> int

val mechanisms : t -> Dem.mechanism array
(** The compiled mechanisms in canonical order.  Do not mutate. *)

val sample : t -> Rng.t -> nshots:int -> Frame_batch.t
(** Draw a batch: one Bernoulli([p]) mask per mechanism, XOR-ed into each of
    its detector rows and flagged observable rows.  Bit [s] = shot [s],
    matching the {!Frame_batch.sample} layout exactly. *)

val sample_flip_counts : ?jobs:int -> t -> Rng.t -> shots:int -> int array
(** Per-observable flip counts over [shots] shots, chunked through
    {!Parallel.monte_carlo} — seed-deterministic at any [jobs], same
    contract as {!Frame_batch.sample_flip_counts}. *)
