(* Bit-parallel batched Pauli-frame sampler (the Stim trick).

   Where [Frame.sample_shot] tracks one shot with per-qubit byte flags, this
   sampler transposes the layout: per qubit, one [Bitvec] row for the X
   component and one for the Z component, with BIT s = SHOT s.  Every
   Clifford gate then acts on all shots of the batch at once as a handful of
   whole-word XOR/AND operations:

     H q        swap the x and z rows of q        (O(1): swap row refs)
     S q        z_q ^= x_q
     CX a b     x_b ^= x_a;  z_a ^= z_b
     CZ a b     z_a ^= x_b;  z_b ^= x_a
     M q        record x_q; scramble z_q with fair coins
     R q        clear both rows

   Noise is injected as batched Bernoulli masks ([Bitvec.random_into]):
   geometric gap sampling makes a rare-error mask cost O(p * shots + 1) RNG
   draws instead of one draw per shot, which is where the bulk of the
   speedup over the scalar sampler comes from — surface-code circuits are
   dominated by low-probability idle-noise channels.

   Detector and observable parities are XOR-folds of measurement rows,
   again word-parallel across the batch. *)

type t = {
  nshots : int;
  detectors : Bitvec.t array;  (* row per detector, bit s = shot s *)
  observables : Bitvec.t array;  (* row per observable *)
}

let batches_total = Obs.Counter.create "pauli.batches_total"
let shots_total = Obs.Counter.create "pauli.shots_total"

(* A single-qubit Pauli channel (px, py, pz) across the batch: three
   DISJOINT masks built by conditional thinning —
     m1 ~ B(px)                           X-only shots
     m2 ~ B(py / (1-px))      masked ~m1  Y shots
     m3 ~ B(pz / (1-px-py))   masked ~m1 & ~m2  Z-only shots
   Per bit the law is exactly the categorical (px, py, pz, rest): the
   thinning factor restores the unconditioned probability.  X flips on
   m1|m2, Z flips on m2|m3. *)
let apply_noise1 rng ~m1 ~m2 ~m3 ~fx ~fz ~px ~py ~pz =
  Bitvec.random_into rng m1 ~p:px;
  let rem1 = 1. -. px in
  Bitvec.random_into rng m2 ~p:(if rem1 <= 0. then 0. else min 1. (py /. rem1));
  Bitvec.andnot_into ~dst:m2 m1;
  let rem2 = 1. -. px -. py in
  Bitvec.random_into rng m3 ~p:(if rem2 <= 0. then 0. else min 1. (pz /. rem2));
  Bitvec.andnot_into ~dst:m3 m1;
  Bitvec.andnot_into ~dst:m3 m2;
  Bitvec.xor_into ~dst:fx m1;
  Bitvec.xor_into ~dst:fx m2;
  Bitvec.xor_into ~dst:fz m2;
  Bitvec.xor_into ~dst:fz m3

let sample (c : Circuit.t) rng ~nshots =
  if nshots < 1 then invalid_arg "Frame_batch.sample: nshots must be >= 1";
  Obs.Counter.incr batches_total;
  Obs.Counter.add shots_total nshots;
  let n = c.Circuit.nqubits in
  let fx = Array.init n (fun _ -> Bitvec.create nshots) in
  let fz = Array.init n (fun _ -> Bitvec.create nshots) in
  let m1 = Bitvec.create nshots in
  let m2 = Bitvec.create nshots in
  let m3 = Bitvec.create nshots in
  let meas = Array.make (max 1 c.Circuit.nmeas) m1 (* placeholder, overwritten *) in
  let mi = ref 0 in
  Array.iter
    (fun (gate : Circuit.gate) ->
      match gate with
      | Circuit.H q ->
          let t = fx.(q) in
          fx.(q) <- fz.(q);
          fz.(q) <- t
      | Circuit.S q -> Bitvec.xor_into ~dst:fz.(q) fx.(q)
      | Circuit.X _ | Circuit.Y _ | Circuit.Z _ -> ()
      | Circuit.CX (a, b) ->
          Bitvec.xor_into ~dst:fx.(b) fx.(a);
          Bitvec.xor_into ~dst:fz.(a) fz.(b)
      | Circuit.CZ (a, b) ->
          Bitvec.xor_into ~dst:fz.(a) fx.(b);
          Bitvec.xor_into ~dst:fz.(b) fx.(a)
      | Circuit.SWAP (a, b) ->
          let tx = fx.(a) and tz = fz.(a) in
          fx.(a) <- fx.(b);
          fz.(a) <- fz.(b);
          fx.(b) <- tx;
          fz.(b) <- tz
      | Circuit.M q ->
          meas.(!mi) <- Bitvec.copy fx.(q);
          incr mi;
          (* Reference measurement dephases the qubit; scramble the Z frame
             with one fair coin per shot, as the scalar sampler does. *)
          Bitvec.random_into rng fz.(q) ~p:0.5
      | Circuit.R q ->
          Bitvec.clear fx.(q);
          Bitvec.clear fz.(q)
      | Circuit.Noise1 { px; py; pz; q } ->
          if px > 0. || py > 0. || pz > 0. then
            apply_noise1 rng ~m1 ~m2 ~m3 ~fx:fx.(q) ~fz:fz.(q) ~px ~py ~pz
      | Circuit.Depol2 { p; a; b } ->
          if p > 0. then begin
            (* Shots drawing a depolarising event are rare; enumerate them
               from a sparse mask and pick one of the 15 non-identity
               two-qubit Paulis per event, as the scalar sampler does. *)
            Bitvec.random_into rng m1 ~p;
            Bitvec.iter_set m1 (fun s ->
                let which = 1 + Rng.int rng 15 in
                let pa = which lsr 2 and pb = which land 3 in
                if pa land 1 <> 0 then Bitvec.flip fx.(a) s;
                if pa land 2 <> 0 then Bitvec.flip fz.(a) s;
                if pb land 1 <> 0 then Bitvec.flip fx.(b) s;
                if pb land 2 <> 0 then Bitvec.flip fz.(b) s)
          end)
    c.Circuit.ops;
  let parity_rows idxs =
    let row = Bitvec.create nshots in
    Array.iter (fun m -> Bitvec.xor_into ~dst:row meas.(m)) idxs;
    row
  in
  { nshots;
    detectors = Array.map parity_rows c.Circuit.detectors;
    observables = Array.map parity_rows c.Circuit.observables }

(* Transpose one shot out of the batch into the scalar [Frame.shot] layout
   (padded to length >= 1, matching [Frame.sample_shot]). *)
let shot b s =
  if s < 0 || s >= b.nshots then invalid_arg "Frame_batch.shot: index out of range";
  let extract rows =
    let out = Bitvec.create (max 1 (Array.length rows)) in
    Array.iteri (fun i row -> if Bitvec.get row s then Bitvec.set out i true) rows;
    out
  in
  (extract b.detectors, extract b.observables)

let flip_counts b = Array.map Bitvec.popcount b.observables

(* ------------------------------------------------- chunked entry points *)

(* One Monte-Carlo chunk = one batch = one RNG split; [Parallel.monte_carlo]
   fixes the chunk layout and merge order, so counts are bit-identical for a
   given seed at any job count. *)

let sample_flip_counts ?jobs (c : Circuit.t) rng ~shots =
  if shots <= 0 then invalid_arg "Frame_batch.sample_flip_counts: shots must be positive";
  let nobs = Array.length c.Circuit.observables in
  Parallel.monte_carlo ?jobs ~rng ~shots ~init:(Array.make nobs 0)
    ~merge:(fun acc part ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) part;
      acc)
    (fun rng nshots -> flip_counts (sample c rng ~nshots))

(* Per-backend decode-latency histograms, interned once: repeated
   [logical_error_count] calls must not redo registry lookups (and worker
   domains must not race to register them mid-run). *)
let decode_hists : (string, Obs.Histogram.t) Hashtbl.t = Hashtbl.create 4
let decode_hists_lock = Mutex.create ()

let decode_hist backend =
  Mutex.protect decode_hists_lock (fun () ->
      match Hashtbl.find_opt decode_hists backend with
      | Some h -> h
      | None ->
          let h = Obs.Histogram.create ("pauli.decode_seconds." ^ backend) in
          Hashtbl.add decode_hists backend h;
          h)

let logical_error_count ?jobs ?(backend = "custom") (c : Circuit.t) rng ~shots ~decode =
  if shots <= 0 then invalid_arg "Frame_batch.logical_error_count: shots must be positive";
  let decode_seconds = decode_hist backend in
  Parallel.monte_carlo_count ?jobs ~rng ~shots (fun rng nshots ->
      let b = sample c rng ~nshots in
      let errors = ref 0 in
      for s = 0 to nshots - 1 do
        let detectors, observables = shot b s in
        let start = Obs.now_ns () in
        let predicted = decode detectors in
        Obs.Histogram.observe decode_seconds
          (Int64.to_float (Int64.sub (Obs.now_ns ()) start) *. 1e-9);
        if not (Bitvec.equal predicted observables) then incr errors
      done;
      !errors)
