(** Bit-parallel batched Pauli-frame sampler.

    Transposed layout relative to {!Frame.sample_shot}: per qubit, one
    {!Bitvec} row per Pauli component with bit [s] = shot [s], so each
    Clifford gate is a handful of whole-word XOR/AND operations across the
    batch, and each noise channel is a batched Bernoulli mask (geometric gap
    sampling: O(p * shots + 1) RNG draws instead of one per shot).

    The batched sampler consumes a DIFFERENT random stream than the scalar
    sampler — per-shot results are not comparable draw-for-draw — but the
    sampled distribution is identical, and noiseless circuits agree exactly.

    The chunked entry points ([sample_flip_counts], [logical_error_count])
    run on {!Parallel.monte_carlo}: one chunk = one batch = one RNG split,
    so results are bit-identical for a given seed at any job count. *)

type t = {
  nshots : int;
  detectors : Bitvec.t array;  (** row per detector, bit [s] = shot [s] *)
  observables : Bitvec.t array;  (** row per observable *)
}

val sample : Circuit.t -> Rng.t -> nshots:int -> t
(** Simulate [nshots] Monte-Carlo shots in one bit-parallel pass. *)

val shot : t -> int -> Bitvec.t * Bitvec.t
(** [shot b s] transposes shot [s] out of the batch as
    [(detectors, observables)] in the scalar {!Frame.shot} layout (vectors
    padded to length >= 1). *)

val flip_counts : t -> int array
(** Per-observable flip counts across the batch (word-parallel popcounts). *)

val sample_flip_counts : ?jobs:int -> Circuit.t -> Rng.t -> shots:int -> int array
(** Chunked, optionally multicore {!Frame.sample_flip_counts}. *)

val logical_error_count :
  ?jobs:int ->
  ?backend:string ->
  Circuit.t -> Rng.t -> shots:int -> decode:(Bitvec.t -> Bitvec.t) -> int
(** Chunked, optionally multicore {!Frame.logical_error_count}.  [decode]
    may run concurrently across domains and must be safe to share
    (the built-in decoders are pure during decode).  The
    [pauli.decode_seconds.<backend>] histogram is interned per backend. *)
