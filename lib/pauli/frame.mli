(** Pauli-frame Monte-Carlo sampler.

    Instead of simulating quantum state, track only the Pauli *error frame*
    relative to a noiseless reference execution — the sampling strategy of
    Stim.  Exact for Clifford circuits with probabilistic Pauli noise, with
    cost O(1) per gate per shot, which makes circuit-level surface-code
    Monte Carlo (Figs. 6–7 of the paper) tractable.

    Detector values produced here equal the XOR of the noiseless reference
    detector parity (always 0, by definition of a detector) with the noise-
    induced measurement flips, so they can be fed directly to a decoder. *)

type shot = { detectors : Bitvec.t; observables : Bitvec.t }

val sample_shot : Circuit.t -> Rng.t -> shot
(** One Monte-Carlo shot: detector parities and logical-observable flips. *)

val sample_flip_counts : ?jobs:int -> Circuit.t -> Rng.t -> shots:int -> int array
(** Count, per observable, the shots on which it flipped (no decoding —
    useful for unencoded/baseline comparisons).  Runs on the bit-parallel
    {!Frame_batch} sampler, chunked through {!Parallel}: bit-identical for a
    given seed at any [jobs] setting. *)

val logical_error_rate :
  ?jobs:int ->
  ?backend:string ->
  Circuit.t -> Rng.t -> shots:int -> decode:(Bitvec.t -> Bitvec.t) -> float
(** Monte-Carlo logical error rate: for each shot, the decoder maps detector
    values to a predicted observable-flip vector; a shot is a logical error
    when any observable's prediction disagrees with the actual flip.
    [backend] labels the decoder-time histogram
    [pauli.decode_seconds.<backend>] (default ["custom"]).  Runs on the
    bit-parallel {!Frame_batch} sampler; [decode] may execute concurrently
    across domains when [jobs > 1]. *)

val logical_error_count :
  ?jobs:int ->
  ?backend:string ->
  Circuit.t -> Rng.t -> shots:int -> decode:(Bitvec.t -> Bitvec.t) -> int
