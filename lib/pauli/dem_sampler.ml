type t = {
  ndet : int;
  nobs : int;
  mechanisms : Dem.mechanism array;  (* canonical (detectors, obs_mask) order *)
}

let compiles_total = Obs.Counter.create "pauli.dem_compiles_total"
let dem_batches_total = Obs.Counter.create "pauli.dem_batches_total"
let dem_shots_total = Obs.Counter.create "pauli.dem_shots_total"
let sample_seconds = Obs.Histogram.create "pauli.dem_sample_seconds"

(* Canonical mechanism order: lexicographic on the detector set, then the
   observable mask.  [Dem.of_circuit] folds a hashtable, so its list order
   is an implementation detail; sorting pins the RNG consumption order of
   [sample] (seed determinism) and the serialized byte stream (store
   round-trips). *)
let compare_mechanism (a : Dem.mechanism) (b : Dem.mechanism) =
  let c = compare a.Dem.detectors b.Dem.detectors in
  if c <> 0 then c
  else
    let c = compare a.Dem.obs_mask b.Dem.obs_mask in
    if c <> 0 then c else compare a.Dem.p b.Dem.p

let of_mechanisms ~ndet ~nobs mechanisms =
  if ndet < 0 || nobs < 0 then invalid_arg "Dem_sampler.of_mechanisms: bad dims";
  let mechanisms = Array.of_list mechanisms in
  Array.iter
    (fun (m : Dem.mechanism) ->
      if m.Dem.p < 0. || m.Dem.p > 1. || Float.is_nan m.Dem.p then
        invalid_arg "Dem_sampler.of_mechanisms: bad probability";
      Array.iter
        (fun d ->
          if d < 0 || d >= ndet then
            invalid_arg "Dem_sampler.of_mechanisms: detector out of range")
        m.Dem.detectors;
      if m.Dem.obs_mask lsr nobs <> 0 then
        invalid_arg "Dem_sampler.of_mechanisms: observable out of range")
    mechanisms;
  Array.sort compare_mechanism mechanisms;
  { ndet; nobs; mechanisms }

let compile (c : Circuit.t) =
  Obs.Counter.incr compiles_total;
  Obs.Trace.with_span "pauli.dem_compile" (fun () ->
      of_mechanisms
        ~ndet:(Array.length c.Circuit.detectors)
        ~nobs:(Array.length c.Circuit.observables)
        (Dem.of_circuit c))

let ndet t = t.ndet
let nobs t = t.nobs
let mechanisms t = t.mechanisms

let sample t rng ~nshots =
  if nshots < 1 then invalid_arg "Dem_sampler.sample: nshots must be >= 1";
  Obs.Counter.incr dem_batches_total;
  Obs.Counter.add dem_shots_total nshots;
  let start = Obs.now_ns () in
  let detectors = Array.init t.ndet (fun _ -> Bitvec.create nshots) in
  let observables = Array.init t.nobs (fun _ -> Bitvec.create nshots) in
  let mask = Bitvec.create nshots in
  Array.iter
    (fun (m : Dem.mechanism) ->
      let p = m.Dem.p in
      if p > 0. && p <= 0.1 then begin
        (* Event-direct path: same geometric gap draws as
           [Bitvec.random_into]'s sparse fill, bit for bit, but the few event
           shots are toggled straight into the touched rows instead of
           materializing a whole-row mask and xoring it through every row.
           Byte-identical output and RNG stream, ~none of the per-mechanism
           row traffic. *)
        let log1mp = log1p (-.p) in
        let i = ref (-1) in
        let continue = ref true in
        while !continue do
          let gap = Rng.geometric rng ~log1mp in
          i := !i + 1 + gap;
          if !i >= nshots || !i < 0 then continue := false
          else begin
            let s = !i in
            (* indexed loop, not Array.iter: the iteration closure would
               capture [s] and be allocated once per event *)
            let det = m.Dem.detectors in
            for k = 0 to Array.length det - 1 do
              Bitvec.flip detectors.(det.(k)) s
            done;
            let obs = ref m.Dem.obs_mask in
            while !obs <> 0 do
              Bitvec.flip observables.(Bitvec.ctz !obs) s;
              obs := !obs land (!obs - 1)
            done
          end
        done
      end
      else if p > 0. then begin
        Bitvec.random_into rng mask ~p;
        Array.iter
          (fun d -> Bitvec.xor_into ~dst:detectors.(d) mask)
          m.Dem.detectors;
        let obs = ref m.Dem.obs_mask in
        while !obs <> 0 do
          Bitvec.xor_into ~dst:observables.(Bitvec.ctz !obs) mask;
          obs := !obs land (!obs - 1)
        done
      end)
    t.mechanisms;
  Obs.Histogram.observe sample_seconds
    (Int64.to_float (Int64.sub (Obs.now_ns ()) start) *. 1e-9);
  { Frame_batch.nshots; detectors; observables }

let sample_flip_counts ?jobs t rng ~shots =
  if shots <= 0 then
    invalid_arg "Dem_sampler.sample_flip_counts: shots must be positive";
  Parallel.monte_carlo ?jobs ~rng ~shots ~init:(Array.make t.nobs 0)
    ~merge:(fun acc part ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) part;
      acc)
    (fun rng nshots -> Frame_batch.flip_counts (sample t rng ~nshots))
