type shot = { detectors : Bitvec.t; observables : Bitvec.t }

let shots_total = Obs.Counter.create "pauli.shots_total"

(* Frame state: x.(q) / z.(q) say whether the accumulated error anticommutes
   with Z_q / X_q.  Gates conjugate the frame; noise XORs random Paulis in;
   a Z-basis measurement is flipped exactly when the frame has an X
   component on the measured qubit. *)

let sample_shot (c : Circuit.t) rng =
  Obs.Counter.incr shots_total;
  let n = c.Circuit.nqubits in
  let fx = Bytes.make n '\000' and fz = Bytes.make n '\000' in
  let getx q = Bytes.unsafe_get fx q <> '\000' in
  let getz q = Bytes.unsafe_get fz q <> '\000' in
  let setx q b = Bytes.unsafe_set fx q (if b then '\001' else '\000') in
  let setz q b = Bytes.unsafe_set fz q (if b then '\001' else '\000') in
  let flips = Bitvec.create (max 1 c.Circuit.nmeas) in
  let mi = ref 0 in
  Array.iter
    (fun (gate : Circuit.gate) ->
      match gate with
      | Circuit.H q ->
          let t = getx q in
          setx q (getz q);
          setz q t
      | Circuit.S q -> setz q (getz q <> getx q)
      | Circuit.X _ | Circuit.Y _ | Circuit.Z _ -> ()
      | Circuit.CX (a, b) ->
          setx b (getx b <> getx a);
          setz a (getz a <> getz b)
      | Circuit.CZ (a, b) ->
          setz a (getz a <> getx b);
          setz b (getz b <> getx a)
      | Circuit.SWAP (a, b) ->
          let xa = getx a and za = getz a in
          setx a (getx b);
          setz a (getz b);
          setx b xa;
          setz b za
      | Circuit.M q ->
          if getx q then Bitvec.set flips !mi true;
          incr mi;
          (* The reference measurement dephases the qubit; the Z frame after
             measurement is irrelevant, randomize it as Stim does. *)
          setz q (Rng.bool rng)
      | Circuit.R q ->
          setx q false;
          setz q false
      | Circuit.Noise1 { px; py; pz; q } ->
          let u = Rng.uniform rng in
          if u < px then setx q (not (getx q))
          else if u < px +. py then begin
            setx q (not (getx q));
            setz q (not (getz q))
          end
          else if u < px +. py +. pz then setz q (not (getz q))
      | Circuit.Depol2 { p; a; b } ->
          if p > 0. && Rng.uniform rng < p then begin
            let which = 1 + Rng.int rng 15 in
            let pa = which lsr 2 and pb = which land 3 in
            if pa land 1 <> 0 then setx a (not (getx a));
            if pa land 2 <> 0 then setz a (not (getz a));
            if pb land 1 <> 0 then setx b (not (getx b));
            if pb land 2 <> 0 then setz b (not (getz b))
          end)
    c.Circuit.ops;
  let parity idxs =
    Array.fold_left (fun acc m -> acc <> Bitvec.get flips m) false idxs
  in
  let detectors = Bitvec.create (max 1 (Array.length c.Circuit.detectors)) in
  Array.iteri (fun i d -> Bitvec.set detectors i (parity d)) c.Circuit.detectors;
  let observables = Bitvec.create (max 1 (Array.length c.Circuit.observables)) in
  Array.iteri (fun i o -> Bitvec.set observables i (parity o)) c.Circuit.observables;
  { detectors; observables }

(* Pauli index convention for Depol2: 2-bit code per qubit, bit0 = X
   component, bit1 = Z component (1=X, 2=Z, 3=Y). *)

(* The Monte-Carlo entry points run on the bit-parallel batch sampler
   (Frame_batch): same distribution, ~the word width faster, and chunked
   through Parallel so multicore runs stay seed-deterministic.  The scalar
   [sample_shot] above remains the reference implementation — and the
   cross-validation oracle for test/test_frame_batch.ml. *)

let sample_flip_counts ?jobs c rng ~shots =
  Frame_batch.sample_flip_counts ?jobs c rng ~shots

let logical_error_count ?jobs ?backend c rng ~shots ~decode =
  Frame_batch.logical_error_count ?jobs ?backend c rng ~shots ~decode

let logical_error_rate ?jobs ?backend c rng ~shots ~decode =
  if shots <= 0 then invalid_arg "Frame.logical_error_rate: shots must be positive";
  float_of_int (logical_error_count ?jobs ?backend c rng ~shots ~decode)
  /. float_of_int shots
