type t = {
  queue : (t -> unit) Heap.t;
  mutable clock : float;
  mutable processed : int;
}

let events_total = Obs.Counter.create "des.events_total"
let queue_high_water = Obs.Gauge.create "des.queue_high_water"
let handler_seconds = Obs.Histogram.create "des.handler_seconds"

let create () = { queue = Heap.create (); clock = 0.; processed = 0 }

let now t = t.clock

let schedule_at t ~time handler =
  if time < t.clock -. 1e-15 then invalid_arg "Des.schedule_at: time in the past";
  Heap.push t.queue time handler;
  Obs.Gauge.set_max queue_high_water (float_of_int (Heap.size t.queue))

let schedule t ~delay handler =
  if delay < 0. then invalid_arg "Des.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) handler

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, handler) ->
      t.clock <- max t.clock time;
      t.processed <- t.processed + 1;
      Obs.Counter.incr events_total;
      let start = Obs.now_ns () in
      handler t;
      Obs.Histogram.observe handler_seconds
        (Int64.to_float (Int64.sub (Obs.now_ns ()) start) *. 1e-9);
      true

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some (time, _) when time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  t.clock <- max t.clock horizon

let run t = while step t do () done
let pending t = Heap.size t.queue
let events_processed t = t.processed
