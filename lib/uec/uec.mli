(** Universal error-correction (UEC) module — §4.2.2, Fig. 9 and Table 3.

    The heterogeneous architecture keeps all data qubits of a stabilizer code
    in the multimode registers of a USC cell and executes stabilizer checks
    *serially*: each check swaps its data qubits out to the register compute
    devices one at a time, gates them with the central readout ancilla, and
    swaps them back.  Code topology becomes irrelevant (any <= 20-qubit code
    fits two 10-mode registers) at the price of a long round and hence a
    demand for long storage coherence Ts.

    The homogeneous baseline executes all checks in parallel on a square
    lattice of compute qubits, paying SWAP-routing overhead whenever the
    code's checks are not lattice-native (the Qiskit-transpiler role is
    played by {!Router}).

    Noise follows §4.2: two-qubit gates (CX and SWAP alike) carry a 1%
    depolarizing error; idling is coherence-limited (Tc = 0.5 ms on compute,
    Ts in storage); readout takes 1 us and is error-free. *)

type arch =
  | Het of { ts : float }  (** USC module with storage coherence [ts] *)
  | Hom  (** parallel checks on a routed square lattice *)

type params = {
  tc : float;  (** compute coherence (T1 = T2), default 0.5 ms *)
  p2 : float;  (** two-qubit gate error, default 1e-2 *)
  t_2q : float;  (** 100 ns *)
  t_swap : float;  (** storage<->compute swap, 100 ns (coherence-limited) *)
  t_readout : float;  (** 1 us *)
  register_capacity : int;  (** modes per register, default 10 *)
  eta : float;
      (** Z-bias of all Pauli noise: pz = eta * px with px = py; 1.0 is the
          paper's unbiased model (extension for tailored-code studies) *)
}

val default_params : params

type profile = {
  arch : arch;
  code : Code.t;
  round_time : float;  (** duration of one full QEC round (all checks) *)
  storage_time : float array;  (** per data qubit, per round *)
  compute_time : float array;
  gates_2q : int array;  (** 2q gates touching each data qubit per round *)
  meas_flip : float array array;
      (** [0]: per-Z-stab syndrome-bit flip probability; [1]: per-X-stab *)
  assignment : int array;  (** register index per data qubit (Het only) *)
}

val profile : ?params:params -> arch -> Code.t -> profile
(** Build the execution profile.  For [Het], the data-to-register assignment
    is optimized by brute force (n <= 20) or greedy alternation (larger),
    maximizing swap/gate pipelining (§4.2.2's brute-force search).  For
    [Hom], checks are placed on a lattice and routed with {!Router}. *)

val logical_failures :
  ?jobs:int -> ?params:params -> profile -> rounds:int -> shots:int -> Rng.t -> int
(** Monte-Carlo logical failure {e count}: [shots] independent experiments of
    [rounds] rounds each; every round injects the profile's idle and gate
    noise, measures all stabilizers (with syndrome-bit flips), decodes X and
    Z sides with the code's lookup decoder, and applies the correction; a
    shot fails when any of its rounds leaves a residual that flips a logical
    operator.  Shot chunks fan across domains via {!Parallel}:
    seed-deterministic at any [jobs] setting. *)

val per_round_rate : failures:int -> rounds:int -> shots:int -> float
(** Convert a failure count over [shots] experiments of [rounds] rounds each
    into the per-round rate the paper plots: 1 - (1 - f/shots)^(1/rounds). *)

val logical_error_rate :
  ?jobs:int -> ?params:params -> profile -> rounds:int -> shots:int -> Rng.t -> float
(** [logical_failures] converted through {!per_round_rate}. *)

val collect_task : ?params:params -> arch -> Code.t -> rounds:int -> Collect.Task.t
(** The UEC experiment as a {!Collect} campaign task (kind ["uec.logical"]),
    identified by code, architecture (including Ts for [Het]), rounds,
    decoder, and the full noise parameter set.  The profile — including the
    brute-force register assignment — is built lazily on the first sampled
    batch.  Recorded errors are {e per-shot} failures; convert merged stats
    with {!per_round_rate}. *)

val round_time_with_registers : ?params:params -> Code.t -> registers:int -> float
(** Ablation: serialized round duration with a single shared register (no
    swap pipelining) or with the optimized two-register USC assignment. *)

val fig9_point : ?params:params -> code:Code.t -> ts:float -> shots:int -> Rng.t -> float
(** Convenience: heterogeneous logical error rate per round at storage
    coherence [ts] (Fig. 9 y-value). *)

val table3_row :
  ?params:params -> code:Code.t -> ts:float -> shots:int -> Rng.t ->
  float * float * float
(** (het rate, hom rate, reduction het-vs-hom) for Table 3 at Ts = [ts]. *)
