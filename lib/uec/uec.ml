type arch = Het of { ts : float } | Hom

type params = {
  tc : float;
  p2 : float;
  t_2q : float;
  t_swap : float;
  t_readout : float;
  register_capacity : int;
  eta : float;
}

let default_params =
  { tc = 0.5e-3;
    p2 = 1e-2;
    t_2q = 100e-9;
    t_swap = 100e-9;
    t_readout = 1e-6;
    register_capacity = 10;
    eta = 1. }

type profile = {
  arch : arch;
  code : Code.t;
  round_time : float;
  storage_time : float array;
  compute_time : float array;
  gates_2q : int array;
  meas_flip : float array array;
  assignment : int array;
}

let all_stabs (code : Code.t) = Array.append code.Code.z_stabs code.Code.x_stabs

(* Serialized check duration for one stabilizer given a register assignment:
   first swap-out and last swap-in are exposed, swaps pipeline behind the
   ancilla CXs when consecutive qubits sit in different registers, and every
   forced same-register adjacency exposes one swap-in + swap-out pair.  With
   free ordering inside the check, the adjacencies are minimized by
   interleaving: max(0, majority - minority - 1). *)
let stab_time p assignment supp =
  let w = Array.length supp in
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun q ->
      let r = assignment.(q) in
      Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)))
    supp;
  let majority = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  let exposed = max 0 ((2 * majority) - w - 1) in
  (2. *. p.t_swap)
  +. (float_of_int w *. p.t_2q)
  +. (float_of_int exposed *. 2. *. p.t_swap)
  +. p.t_readout

let round_time_of p assignment stabs =
  Array.fold_left (fun acc s -> acc +. stab_time p assignment s) 0. stabs

(* Data-to-register assignment: brute force over balanced 2-register splits
   for n <= 20, greedy alternation beyond.  Results are memoized per
   (code, capacity, timing) — the DSE cache pattern: the assignment depends
   only on the schedule geometry, not on coherence times, so every Ts sweep
   point reuses it. *)
let assignment_memo : (string, int array) Hashtbl.t = Hashtbl.create 16
let assignment_memo_lock = Mutex.create ()

let compute_assignment p (code : Code.t) =
  let n = code.Code.n in
  let cap = p.register_capacity in
  let registers = max 2 ((n + cap - 1) / cap) in
  let stabs = all_stabs code in
  if registers > 2 || n > 20 then begin
    (* Greedy: alternate qubits across registers in index order. *)
    Array.init n (fun q -> q mod registers)
  end
  else begin
    let best = ref None in
    for mask = 0 to (1 lsl n) - 1 do
      let ones =
        let c = ref 0 and x = ref mask in
        while !x <> 0 do
          x := !x land (!x - 1);
          incr c
        done;
        !c
      in
      if ones <= cap && n - ones <= cap then begin
        let assignment = Array.init n (fun q -> (mask lsr q) land 1) in
        let t = round_time_of p assignment stabs in
        match !best with
        | Some (bt, _) when bt <= t -> ()
        | _ -> best := Some (t, assignment)
      end
    done;
    match !best with
    | Some (_, a) -> a
    | None -> invalid_arg "Uec.optimize_assignment: code does not fit the registers"
  end

let optimize_assignment p (code : Code.t) =
  let memo_key =
    Printf.sprintf "%s/%d/%g/%g/%g" code.Code.name p.register_capacity p.t_swap
      p.t_2q p.t_readout
  in
  let cached =
    Mutex.protect assignment_memo_lock (fun () ->
        Hashtbl.find_opt assignment_memo memo_key)
  in
  match cached with
  | Some a -> Array.copy a
  | None ->
      (* Computed outside the lock: brute force can take a while, and a
         duplicate computation by a racing domain is idempotent. *)
      let a = compute_assignment p code in
      Mutex.protect assignment_memo_lock (fun () ->
          if not (Hashtbl.mem assignment_memo memo_key) then
            Hashtbl.add assignment_memo memo_key (Array.copy a));
      a

let meas_flip_of p supp = 1. -. ((1. -. (8. /. 15. *. p.p2)) ** float_of_int (Array.length supp))

let het_profile p ts (code : Code.t) =
  let n = code.Code.n in
  let assignment = optimize_assignment p code in
  let stabs = all_stabs code in
  let round_time = round_time_of p assignment stabs in
  let compute_time = Array.make n 0. in
  let gates = Array.make n 0 in
  Array.iter
    (fun supp ->
      Array.iter
        (fun q ->
          compute_time.(q) <- compute_time.(q) +. (2. *. p.t_swap) +. p.t_2q;
          (* storage-access SWAPs are coherence-limited (their idle cost is in
             compute_time); only the ancilla CX carries the 1% gate error *)
          gates.(q) <- gates.(q) + 1)
        supp)
    stabs;
  let storage_time = Array.init n (fun q -> round_time -. compute_time.(q)) in
  { arch = Het { ts };
    code;
    round_time;
    storage_time;
    compute_time;
    gates_2q = gates;
    meas_flip =
      [| Array.map (meas_flip_of p) code.Code.z_stabs;
         Array.map (meas_flip_of p) code.Code.x_stabs |];
    assignment }

let hom_profile p (code : Code.t) =
  let n = code.Code.n in
  let nstabs = Code.num_stabs code in
  let gates = Array.make n 0 in
  let round_time, data_extra =
    if code.Code.planar then begin
      (* Lattice-native: four interleaved CX layers, no routing. *)
      Array.iter
        (fun supp -> Array.iter (fun q -> gates.(q) <- gates.(q) + 1) supp)
        (all_stabs code);
      ((4. *. p.t_2q) +. p.t_readout, fun _ -> ())
    end
    else begin
      (* Route every (data, ancilla) op on a shared lattice. *)
      let grid = Grid.of_min_qubits (n + nstabs) in
      let data_pos q = q in
      let anc_pos i = n + i in
      let ops = ref [] in
      let attribution = ref [] in
      Array.iteri
        (fun i supp ->
          Array.iter
            (fun q ->
              ops := { Router.a = data_pos q; b = anc_pos i } :: !ops;
              attribution := q :: !attribution)
            supp)
        (all_stabs code);
      let ops = List.rev !ops and attribution = List.rev !attribution in
      let sched = Router.schedule grid ops in
      List.iteri
        (fun idx q ->
          let op = List.nth ops idx in
          gates.(q) <- gates.(q) + Router.route_cost grid op)
        attribution;
      ((float_of_int sched.Router.makespan *. p.t_2q) +. p.t_readout, fun _ -> ())
    end
  in
  ignore data_extra;
  { arch = Hom;
    code;
    round_time;
    storage_time = Array.make n 0.;
    compute_time = Array.make n round_time;
    gates_2q = gates;
    meas_flip =
      [| Array.map (meas_flip_of p) code.Code.z_stabs;
         Array.map (meas_flip_of p) code.Code.x_stabs |];
    assignment = Array.make n 0 }

let profile ?(params = default_params) arch code =
  match arch with
  | Het { ts } -> het_profile params ts code
  | Hom -> hom_profile params code

(* Pauli-channel composition in (x,z) bit coordinates: I=0, X=1, Z=2, Y=3. *)
let compose_pauli a b =
  let out = Array.make 4 0. in
  for i = 0 to 3 do
    for j = 0 to 3 do
      out.(i lxor j) <- out.(i lxor j) +. (a.(i) *. b.(j))
    done
  done;
  out

(* Split a total Pauli probability with Z-bias eta: px = py = P/(2+eta),
   pz = eta P/(2+eta); eta = 1 recovers the unbiased split. *)
let biased_split ~eta total =
  let share = total /. (2. +. eta) in
  [| 1. -. total; share; eta *. share; share |]

let idle_probs ?(eta = 1.) ~t ~dt () =
  if dt <= 0. then [| 1.; 0.; 0.; 0. |]
  else begin
    let q = 1. -. exp (-.dt /. t) in
    biased_split ~eta (3. *. q /. 4.)
  end

let gate_probs ?(eta = 1.) p2 = biased_split ~eta (0.8 *. p2)

(* Per-qubit per-round effective Pauli channel. *)
let effective_channels ?(params = default_params) prof =
  let ts = match prof.arch with Het { ts } -> ts | Hom -> params.tc in
  Array.init prof.code.Code.n (fun q ->
      let acc = ref (idle_probs ~eta:params.eta ~t:ts ~dt:prof.storage_time.(q) ()) in
      acc :=
        compose_pauli !acc
          (idle_probs ~eta:params.eta ~t:params.tc ~dt:prof.compute_time.(q) ());
      let g = gate_probs ~eta:params.eta params.p2 in
      for _ = 1 to prof.gates_2q.(q) do
        acc := compose_pauli !acc g
      done;
      !acc)

let uec_shots_total = Obs.Counter.create "uec.shots_total"

let logical_failures_impl ?jobs ?(params = default_params) prof ~rounds ~shots rng =
  if rounds < 1 || shots < 1 then invalid_arg "Uec.logical_error_rate";
  let code = prof.code in
  let n = code.Code.n in
  let decoder = Decoder_lookup.create code in
  let rest_t = match prof.arch with Het { ts } -> ts | Hom -> params.tc in
  (* Checks are extracted at distinct times within a round (fully serialized
     on the USC; a single parallel step on the lattice), so noise is injected
     per extraction step — mid-round errors leave the serial syndrome
     internally inconsistent, which is the real cost of serialization. *)
  let nz = Array.length code.Code.z_stabs in
  let steps =
    match prof.arch with
    | Het _ ->
        Array.map
          (fun supp ->
            ( idle_probs ~eta:params.eta ~t:rest_t
                ~dt:(stab_time params prof.assignment supp) (),
              supp ))
          (all_stabs code)
    | Hom ->
        Array.map
          (fun supp ->
            ( idle_probs ~eta:params.eta ~t:rest_t
                ~dt:(prof.round_time /. float_of_int (Code.num_stabs code)) (),
              supp ))
          (all_stabs code)
  in
  (* Per-check extras for the touched qubits: compute-idle during the swaps
     and CX, plus the CX depolarizing marginal. *)
  let touch_probs =
    compose_pauli
      (idle_probs ~eta:params.eta ~t:params.tc
         ~dt:((2. *. params.t_swap) +. params.t_2q) ())
      (gate_probs ~eta:params.eta params.p2)
  in
  let hom_channels =
    match prof.arch with Hom -> effective_channels ~params prof | Het _ -> [||]
  in
  let step_masks =
    Array.map
      (fun (_, supp) -> Array.fold_left (fun acc q -> acc lor (1 lsl q)) 0 supp)
      steps
  in
  (* Shot chunks fan across domains; everything above (steps, touch_probs,
     hom_channels, the decoder) is read-only and shared.  Error state lives
     in two int bitmasks (bit q = qubit q; n <= 30 is enforced by
     [Decoder_lookup.create]) and syndromes in packed int keys, so the shot
     loop allocates nothing.  RNG consumption order is unchanged from the
     bool-array version — one uniform per inject, one bernoulli per check
     read — and the packed-key agreement test and mask corrections are
     exact rewrites, so failure counts are bit-identical to it. *)
  let run_chunk rng nshots =
  let failures = ref 0 in
  let xerr = ref 0 and zerr = ref 0 in
  let inject c q =
    let u = Rng.uniform rng in
    let bit = 1 lsl q in
    if u < c.(1) then xerr := !xerr lxor bit
    else if u < c.(1) +. c.(2) then zerr := !zerr lxor bit
    else if u < c.(1) +. c.(2) +. c.(3) then begin
      xerr := !xerr lxor bit;
      zerr := !zerr lxor bit
    end
  in
  let parity mask =
    let c = ref 0 and x = ref mask in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr c
    done;
    !c land 1
  in
  for _ = 1 to nshots do
    xerr := 0;
    zerr := 0;
    let prev_sz = ref (-1) and prev_sx = ref (-1) in
    for _ = 1 to rounds do
      let sz = ref 0 and sx = ref 0 in
      let read k =
        let is_z = k < nz in
        let err = if is_z then !xerr else !zerr in
        let p = parity (err land step_masks.(k)) in
        let flip_p = if is_z then prof.meas_flip.(0).(k) else prof.meas_flip.(1).(k - nz) in
        let bit = if Rng.bernoulli rng flip_p then 1 - p else p in
        if bit = 1 then
          if is_z then sz := !sz lor (1 lsl k)
          else sx := !sx lor (1 lsl (k - nz))
      in
      (match prof.arch with
      | Het _ ->
          (* Serial: idle interval, read the check, then its gate noise. *)
          Array.iteri
            (fun k (interval_probs, supp) ->
              for q = 0 to n - 1 do
                inject interval_probs q
              done;
              read k;
              Array.iter (fun q -> inject touch_probs q) supp)
            steps
      | Hom ->
          (* Parallel: all of the round's noise (idle plus every routed 2q
             gate) lands, then every check reads the same error state. *)
          for q = 0 to n - 1 do
            inject hom_channels.(q) q
          done;
          Array.iteri (fun k _ -> read k) steps);
      (* Repeat-until-agree: apply a correction only when two consecutive
         extractions agree, suppressing syndrome noise to second order. *)
      if !prev_sz >= 0 && !prev_sz = !sz then
        xerr := !xerr lxor Decoder_lookup.x_correction_mask decoder ~key:!sz;
      prev_sz := !sz;
      if !prev_sx >= 0 && !prev_sx = !sx then
        zerr := !zerr lxor Decoder_lookup.z_correction_mask decoder ~key:!sx;
      prev_sx := !sx
    done;
    (* End-of-experiment evaluation with a final ideal recovery (noiseless
       syndrome, perfect decode) — the standard memory-experiment semantics;
       judging the transient state every round would count correctable
       weight-2 patterns as failures.  [logical_x_flip_mask] is exactly
       ideal-residual-then-logical-parity on masks. *)
    let x_fail = Decoder_lookup.logical_x_flip_mask decoder ~actual:!xerr in
    let z_fail = Decoder_lookup.logical_z_flip_mask decoder ~actual:!zerr in
    if x_fail || z_fail then incr failures
  done;
  !failures
  in
  Parallel.monte_carlo_count ?jobs ~rng ~shots run_chunk

let per_round_rate ~failures ~rounds ~shots =
  let per_shot = float_of_int failures /. float_of_int shots in
  (* Per-round (per-cycle) rate. *)
  if per_shot >= 1. then 1.
  else 1. -. ((1. -. per_shot) ** (1. /. float_of_int rounds))

let logical_failures ?jobs ?params prof ~rounds ~shots rng =
  Obs.Counter.add uec_shots_total shots;
  Obs.Trace.with_span "uec.logical_error_rate"
    ~attrs:
      [ ("code", prof.code.Code.name);
        ("rounds", string_of_int rounds);
        ("shots", string_of_int shots) ]
    (fun () -> logical_failures_impl ?jobs ?params prof ~rounds ~shots rng)

let logical_error_rate ?jobs ?params prof ~rounds ~shots rng =
  let failures = logical_failures ?jobs ?params prof ~rounds ~shots rng in
  per_round_rate ~failures ~rounds ~shots

(* Campaign integration: a UEC experiment as a Collect task.  Identity spans
   code, architecture, rounds, decoder, and the whole noise model, so het
   and hom points — and different Ts — never collide in a ledger.  The
   profile (including the brute-force register assignment) is built on the
   first sampled batch.  Errors are per-shot failures; convert with
   {!per_round_rate} when plotting. *)
let collect_task ?(params = default_params) arch (code : Code.t) ~rounds =
  if rounds < 1 then invalid_arg "Uec.collect_task: rounds must be >= 1";
  let prof = lazy (profile ~params arch code) in
  let arch_fields =
    match arch with
    | Het { ts } -> [ ("arch", "het"); ("ts", Printf.sprintf "%.17g" ts) ]
    | Hom -> [ ("arch", "hom") ]
  in
  Collect.Task.create ~kind:"uec.logical"
    ~fields:
      (arch_fields
      @ [ ("code", code.Code.name);
          ("n", string_of_int code.Code.n);
          ("distance", string_of_int code.Code.distance);
          ("rounds", string_of_int rounds);
          ("decoder", "lookup");
          ("tc", Printf.sprintf "%.17g" params.tc);
          ("p2", Printf.sprintf "%.17g" params.p2);
          ("eta", Printf.sprintf "%.17g" params.eta);
          ("t_2q", Printf.sprintf "%.17g" params.t_2q);
          ("t_swap", Printf.sprintf "%.17g" params.t_swap);
          ("t_readout", Printf.sprintf "%.17g" params.t_readout);
          ("register_capacity", string_of_int params.register_capacity) ])
    ~sample:(fun rng shots ->
      logical_failures ~params (Lazy.force prof) ~rounds ~shots rng)

(* Ablation helper: serialized round time when all data shares one register
   (no swap pipelining) versus the optimized two-register assignment. *)
let round_time_with_registers ?(params = default_params) (code : Code.t) ~registers =
  let stabs = all_stabs code in
  match registers with
  | 1 -> round_time_of params (Array.make code.Code.n 0) stabs
  | 2 -> round_time_of params (optimize_assignment params code) stabs
  | _ -> invalid_arg "Uec.round_time_with_registers: 1 or 2 registers"

let fig9_point ?(params = default_params) ~code ~ts ~shots rng =
  let prof = profile ~params (Het { ts }) code in
  (* 3 rounds keeps the per-shot failure probability out of saturation even
     for the noisiest configurations while still exercising the
     repeat-until-agree syndrome handling. *)
  logical_error_rate ~params prof ~rounds:3 ~shots rng

let table3_row ?(params = default_params) ~code ~ts ~shots rng =
  let het = profile ~params (Het { ts }) code in
  let hom = profile ~params Hom code in
  let het_rate = logical_error_rate ~params het ~rounds:3 ~shots rng in
  let hom_rate = logical_error_rate ~params hom ~rounds:3 ~shots rng in
  let reduction = if het_rate > 0. then hom_rate /. het_rate else infinity in
  (het_rate, hom_rate, reduction)
