type params = {
  uec : Uec.params;
  ep_rate_hz : float;
  ep_target : float;
  cat_verify_checks : int;
  distill_horizon : float;
}

let default_params =
  { uec = Uec.default_params;
    ep_rate_hz = 1e6;
    ep_target = 0.995;
    cat_verify_checks = 2;
    distill_horizon = 1e-3 }

type breakdown = {
  e_ep : float;
  e_cat : float;
  e_plus_a : float;
  e_plus_b : float;
  e_meas : float;
  total : float;
}

let combine es = 1. -. List.fold_left (fun acc e -> acc *. (1. -. e)) 1. es

(* Residual EP infidelity from the distillation sub-module: run the
   discrete-event simulation and report the best output infidelity it
   sustains; if it never delivers a pair at target, use the best it ever
   achieved (the paper notes homogeneous systems failing the 99.5% target). *)
let ep_infidelity p ~het ~ts rng =
  let cfg =
    if het then Distill_module.heterogeneous ~ts ~rate_hz:p.ep_rate_hz ()
    else Distill_module.homogeneous ~rate_hz:p.ep_rate_hz ()
  in
  let cfg = { cfg with Distill_module.target_fidelity = p.ep_target } in
  let result = Distill_module.run cfg rng ~horizon:p.distill_horizon in
  let best =
    List.fold_left
      (fun acc s ->
        match s.Distill_module.best_output_infidelity with
        | Some i -> min acc i
        | None -> acc)
      1. result.Distill_module.trace
  in
  if result.Distill_module.delivered > 0 then min best (1. -. p.ep_target)
  else best

(* CAT state of n_cat qubits grown by sequential CNOTs in SeqOp cells and
   verified by parity checks; the remote CNOT bridging the two halves
   consumes one distilled EP. *)
let cat_error p ~n_cat ~rest_t ~e_ep ~routed_extra =
  let u = p.uec in
  let p_cnot = 0.8 *. u.Uec.p2 in
  let cnots = n_cat - 1 + (2 * p.cat_verify_checks) + routed_extra in
  let gate_err = 1. -. ((1. -. p_cnot) ** float_of_int cnots) in
  (* each qubit idles (in storage for the SeqOp registers, on compute in the
     homogeneous case) while the chain grows serially *)
  let t_grow =
    float_of_int (n_cat - 1) *. (u.Uec.t_2q +. (2. *. u.Uec.t_swap))
    +. (float_of_int p.cat_verify_checks *. u.Uec.t_readout)
  in
  let q_idle = 0.75 *. (1. -. exp (-.t_grow /. rest_t)) in
  let idle_err = 1. -. ((1. -. q_idle) ** float_of_int n_cat) in
  combine [ gate_err; idle_err; e_ep ]

(* Logical |+> preparation on a UEC module: encode and verify with two QEC
   rounds of the code on the given architecture. *)
let plus_prep_error ?(params = Uec.default_params) arch code ~shots rng =
  let prof = Uec.profile ~params arch code in
  Uec.logical_error_rate ~params prof ~rounds:2 ~shots rng

(* Routing overhead of the homogeneous transversal stage.  The lattice is as
   large as needed and placement is free, so take the cheaper of the two
   natural layouts: blocks side by side (CAT chain native, transversal CNOTs
   routed) or interleaved pairs (transversal native, chain growth routed). *)
let hom_routed_extra (code_a : Code.t) (code_b : Code.t) =
  let n_cat = code_a.Code.n + code_b.Code.n in
  let grid = Grid.of_min_qubits (2 * n_cat) in
  let side = Grid.side grid in
  let cost placement_cat placement_data =
    let chain =
      List.init (n_cat - 1) (fun i ->
          { Router.a = placement_cat i; b = placement_cat (i + 1) })
    in
    let transversal =
      List.init n_cat (fun i -> { Router.a = placement_cat i; b = placement_data i })
    in
    let sched = Router.schedule grid (chain @ transversal) in
    max 0 (sched.Router.two_qubit_gates - (n_cat - 1) - n_cat)
  in
  let blocks = cost (fun i -> i) (fun i -> min (Grid.size grid - 1) (n_cat + i)) in
  let interleaved =
    (* pair (cat, data) on adjacent columns of the same row *)
    let pos kind i =
      let idx = (2 * i) + kind in
      min (Grid.size grid - 1) ((idx / side * side) + (idx mod side))
    in
    cost (pos 0) (pos 1)
  in
  min blocks interleaved

let heterogeneous ?(params = default_params) ~code_a ~code_b ~ts ~shots rng =
  let e_ep = ep_infidelity params ~het:true ~ts (Rng.split rng) in
  let n_cat = code_a.Code.n + code_b.Code.n in
  let e_cat = cat_error params ~n_cat ~rest_t:ts ~e_ep ~routed_extra:0 in
  let e_plus_a =
    plus_prep_error ~params:params.uec (Uec.Het { ts }) code_a ~shots rng
  in
  let e_plus_b =
    plus_prep_error ~params:params.uec (Uec.Het { ts }) code_b ~shots rng
  in
  let e_meas =
    let prof = Uec.profile ~params:params.uec (Uec.Het { ts }) code_a in
    Uec.logical_error_rate ~params:params.uec prof ~rounds:1 ~shots rng
  in
  let total = combine [ e_cat; e_plus_a; e_plus_b; e_meas ] in
  { e_ep; e_cat; e_plus_a; e_plus_b; e_meas; total }

let homogeneous ?(params = default_params) ~code_a ~code_b ~shots rng =
  let tc = params.uec.Uec.tc in
  let e_ep = ep_infidelity params ~het:false ~ts:tc (Rng.split rng) in
  let n_cat = code_a.Code.n + code_b.Code.n in
  let routed_extra = hom_routed_extra code_a code_b in
  let e_cat = cat_error params ~n_cat ~rest_t:tc ~e_ep ~routed_extra in
  let e_plus_a = plus_prep_error ~params:params.uec Uec.Hom code_a ~shots rng in
  let e_plus_b = plus_prep_error ~params:params.uec Uec.Hom code_b ~shots rng in
  let e_meas =
    let prof = Uec.profile ~params:params.uec Uec.Hom code_a in
    Uec.logical_error_rate ~params:params.uec prof ~rounds:1 ~shots rng
  in
  let total = combine [ e_cat; e_plus_a; e_plus_b; e_meas ] in
  { e_ep; e_cat; e_plus_a; e_plus_b; e_meas; total }

let points_total = Obs.Counter.create "teleport.points_total"

let point_span ~code_a ~code_b f =
  Obs.Counter.incr points_total;
  Obs.Trace.with_span "teleport.point"
    ~attrs:[ ("code_a", code_a.Code.name); ("code_b", code_b.Code.name) ]
    f

let fig12_point ?(params = default_params) ~code_a ~code_b ~ts ~shots rng =
  point_span ~code_a ~code_b (fun () ->
      (heterogeneous ~params ~code_a ~code_b ~ts ~shots rng).total)

let table4 ?(params = default_params) ~codes ~ts ~shots rng =
  let pairs = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a.Code.name <> b.Code.name then
            point_span ~code_a:a ~code_b:b (fun () ->
                let het =
                  (heterogeneous ~params ~code_a:a ~code_b:b ~ts ~shots rng).total
                in
                let hom = (homogeneous ~params ~code_a:a ~code_b:b ~shots rng).total in
                pairs := (a.Code.name, b.Code.name, het, hom) :: !pairs))
        codes)
    codes;
  List.rev !pairs
