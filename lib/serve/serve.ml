(* Long-running estimation service: newline-delimited JSON over a socket.

   Single-threaded select loop by design: no locks, no background threads,
   no external dependencies.  Concurrency comes from two places — the
   kernel buffers requests that arrive while a computation is in flight
   (so the next drain coalesces duplicates onto the single-flight table),
   and each computation fans its shots across the Parallel domain pool.
   Responses carry deterministic content only (no timestamps, no serving
   metadata — that lives in counters, gauges, and spans), so identical
   requests receive byte-identical bodies from any tier: computed cold,
   coalesced, memory-warm, disk-warm, or recomputed at another --jobs. *)

let protocol_version = "hetarch.serve/1"
let max_request_bytes = 65536

type query = {
  kind : string;
  fields : (string * string) list;
  hash : string;
}

type control = Ping | Stats | Shutdown
type request = Query of query | Control of control
type error = { code : int; message : string }

exception Bad of error

let bad code fmt =
  Printf.ksprintf (fun message -> raise (Bad { code; message })) fmt

(* ------------------------------------------------------------------ *)
(* Request identity                                                   *)

let request_hash ~kind ~fields =
  Content_hash.of_components
    (protocol_version :: kind
    :: List.concat_map
         (fun (k, v) -> [ k; v ])
         (List.sort (fun (a, _) (b, _) -> compare a b) fields))

(* ------------------------------------------------------------------ *)
(* Codec: parse + normalize.  Defaults are filled in, numbers rendered
   canonically (ints as decimal, floats as %.17g — the same rendering
   Obs.Json uses), and fields sorted by key, so spelling a default out,
   reordering fields, or writing 5e-2 for 0.05 never changes identity. *)

let canon_float f = Printf.sprintf "%.17g" f
let canon_bool b = if b then "true" else "false"

let int_field members name ~default ~lo ~hi =
  match List.assoc_opt name members with
  | None -> default
  | Some v -> (
      match Obs.Json.to_int v with
      | i when i >= lo && i <= hi -> i
      | i -> bad 400 "%s: %d out of range [%d, %d]" name i lo hi
      | exception Failure _ -> bad 400 "%s: expected an integer" name)

let float_field members name ~default ~lo ~hi =
  match List.assoc_opt name members with
  | None -> default
  | Some v -> (
      match Obs.Json.to_float v with
      | f when Float.is_finite f && f >= lo && f <= hi -> f
      | f when Float.is_finite f -> bad 400 "%s: %g out of range [%g, %g]" name f lo hi
      | _ -> bad 400 "%s: expected a finite number" name
      | exception Failure _ -> bad 400 "%s: expected a number" name)

let bool_field members name ~default =
  match List.assoc_opt name members with
  | None -> default
  | Some (Obs.Json.Bool b) -> b
  | Some _ -> bad 400 "%s: expected a boolean" name

let enum_field members name ~default ~values =
  match List.assoc_opt name members with
  | None -> default
  | Some (Obs.Json.String s) when List.mem s values -> s
  | Some (Obs.Json.String s) ->
      bad 400 "%s: unknown value %S (want one of %s)" name s
        (String.concat ", " values)
  | Some _ -> bad 400 "%s: expected a string" name

let string_field members name ~default =
  match List.assoc_opt name members with
  | None -> default
  | Some (Obs.Json.String s) when s <> "" -> s
  | Some _ -> bad 400 "%s: expected a non-empty string" name

(* Common sampling parameters: every sampling kind carries the campaign
   seed and a per-request shot budget (bounded — this is admission
   control's first line, long before the queue limit). *)
let sampling_fields members =
  let shots = int_field members "shots" ~default:1024 ~lo:1 ~hi:1_000_000 in
  let seed = int_field members "seed" ~default:1 ~lo:0 ~hi:max_int in
  (shots, seed)

let finish ~kind ~allowed members fields =
  List.iter
    (fun (k, _) ->
      if k <> "kind" && not (List.mem k allowed) then
        bad 400 "unknown field %S for kind %s" k kind)
    members;
  let fields = List.sort (fun (a, _) (b, _) -> compare a b) fields in
  { kind; fields; hash = request_hash ~kind ~fields }

let parse_threshold members =
  let distance = int_field members "distance" ~default:3 ~lo:2 ~hi:25 in
  let default_t = (Surface_circuit.default ~distance).Surface_circuit.t_data in
  let t_data =
    float_field members "t_data" ~default:default_t ~lo:1e-9 ~hi:1.0
  in
  let shots, seed = sampling_fields members in
  finish ~kind:"threshold"
    ~allowed:[ "distance"; "t_data"; "shots"; "seed" ]
    members
    [ ("distance", string_of_int distance);
      ("t_data", canon_float t_data);
      ("shots", string_of_int shots);
      ("seed", string_of_int seed) ]

let parse_uec members =
  let code = string_field members "code" ~default:"SC3" in
  (match Codes.by_name code with
  | (_ : Code.t) -> ()
  | exception Not_found -> bad 400 "code: unknown code name %S" code);
  let rounds = int_field members "rounds" ~default:3 ~lo:1 ~hi:1000 in
  let arch = enum_field members "arch" ~default:"het" ~values:[ "het"; "hom" ] in
  let ts = float_field members "ts" ~default:50e-3 ~lo:1e-9 ~hi:1e3 in
  let shots, seed = sampling_fields members in
  finish ~kind:"uec"
    ~allowed:[ "code"; "rounds"; "arch"; "ts"; "shots"; "seed" ]
    members
    [ ("code", code);
      ("rounds", string_of_int rounds);
      ("arch", arch);
      ("ts", canon_float ts);
      ("shots", string_of_int shots);
      ("seed", string_of_int seed) ]

let parse_distill members =
  let arch = enum_field members "arch" ~default:"het" ~values:[ "het"; "hom" ] in
  let rate_hz = float_field members "rate_hz" ~default:1e6 ~lo:1.0 ~hi:1e12 in
  let horizon = float_field members "horizon" ~default:100e-6 ~lo:1e-9 ~hi:1.0 in
  let min_delivered = int_field members "min_delivered" ~default:1 ~lo:0 ~hi:1000 in
  let shots, seed = sampling_fields members in
  finish ~kind:"distill"
    ~allowed:[ "arch"; "rate_hz"; "horizon"; "min_delivered"; "shots"; "seed" ]
    members
    [ ("arch", arch);
      ("rate_hz", canon_float rate_hz);
      ("horizon", canon_float horizon);
      ("min_delivered", string_of_int min_delivered);
      ("shots", string_of_int shots);
      ("seed", string_of_int seed) ]

let parse_dse members =
  let op =
    enum_field members "op" ~default:"load"
      ~values:[ "load"; "retention"; "seq_cnots"; "stabilizer" ]
  in
  let alpha = float_field members "alpha" ~default:1.0 ~lo:1e-3 ~hi:1e3 in
  let dt = float_field members "dt" ~default:10e-6 ~lo:1e-12 ~hi:1.0 in
  let count = int_field members "count" ~default:5 ~lo:1 ~hi:100 in
  let weight = int_field members "weight" ~default:4 ~lo:2 ~hi:8 in
  let serialized = bool_field members "serialized" ~default:true in
  finish ~kind:"dse"
    ~allowed:[ "op"; "alpha"; "dt"; "count"; "weight"; "serialized" ]
    members
    [ ("op", op);
      ("alpha", canon_float alpha);
      ("dt", canon_float dt);
      ("count", string_of_int count);
      ("weight", string_of_int weight);
      ("serialized", canon_bool serialized) ]

let parse_control ~kind ~ctl members =
  ignore (finish ~kind ~allowed:[] members []);
  Control ctl

let parse_request line =
  try
    if String.length line > max_request_bytes then
      bad 413 "request exceeds %d bytes" max_request_bytes;
    let doc =
      try Obs.Json.parse line
      with Failure m -> bad 400 "malformed JSON: %s" m
    in
    let members =
      match doc with
      | Obs.Json.Obj ms -> ms
      | _ -> bad 400 "request must be a JSON object"
    in
    let kind =
      match List.assoc_opt "kind" members with
      | Some (Obs.Json.String k) -> k
      | Some _ -> bad 400 "kind must be a string"
      | None -> bad 400 "missing field \"kind\""
    in
    Ok
      (match kind with
      | "ping" -> parse_control ~kind ~ctl:Ping members
      | "stats" -> parse_control ~kind ~ctl:Stats members
      | "shutdown" -> parse_control ~kind ~ctl:Shutdown members
      | "threshold" -> Query (parse_threshold members)
      | "uec" -> Query (parse_uec members)
      | "distill" -> Query (parse_distill members)
      | "dse" -> Query (parse_dse members)
      | k -> bad 404 "unknown query kind %S" k)
  with Bad e -> Error e

(* ------------------------------------------------------------------ *)
(* Response rendering                                                 *)

let error_body e =
  Obs.Json.(
    to_string
      (Obj
         [ ("schema", String protocol_version);
           ("error", Obj [ ("code", Int e.code); ("message", String e.message) ])
         ]))

let ok_body kind =
  Obs.Json.(
    to_string
      (Obj
         [ ("schema", String protocol_version);
           ("kind", String kind);
           ("ok", Bool true) ]))

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)

let requests_total = Obs.Counter.create "serve.requests_total"
let responses_total = Obs.Counter.create "serve.responses_total"
let coalesced_total = Obs.Counter.create "serve.coalesced_total"
let warm_memory_hits_total = Obs.Counter.create "serve.warm_memory_hits_total"
let warm_disk_hits_total = Obs.Counter.create "serve.warm_disk_hits_total"
let computed_total = Obs.Counter.create "serve.computed_total"
let rejected_total = Obs.Counter.create "serve.rejected_total"
let error_responses_total = Obs.Counter.create "serve.error_responses_total"
let queue_depth_gauge = Obs.Gauge.create "serve.queue_depth"
let connections_gauge = Obs.Gauge.create "serve.connections"

let stats_body () =
  let tasks_run, domains_spawned = Parallel.stats () in
  let queue_remaining, busy_domains = Parallel.queue_stats () in
  let c cnt = Obs.Json.Int (Obs.Counter.value cnt) in
  Obs.Json.(
    to_string
      (Obj
         [ ("schema", String protocol_version);
           ("kind", String "stats");
           ( "counters",
             Obj
               [ ("serve.requests_total", c requests_total);
                 ("serve.responses_total", c responses_total);
                 ("serve.coalesced_total", c coalesced_total);
                 ("serve.warm_memory_hits_total", c warm_memory_hits_total);
                 ("serve.warm_disk_hits_total", c warm_disk_hits_total);
                 ("serve.computed_total", c computed_total);
                 ("serve.rejected_total", c rejected_total);
                 ("serve.error_responses_total", c error_responses_total) ] );
           ( "gauges",
             Obj
               [ ("serve.queue_depth", Float (Obs.Gauge.value queue_depth_gauge));
                 ("serve.connections", Float (Obs.Gauge.value connections_gauge))
               ] );
           ( "parallel",
             Obj
               [ ("jobs", Int (Parallel.jobs ()));
                 ("tasks_run", Int tasks_run);
                 ("domains_spawned", Int domains_spawned);
                 ("queue_remaining", Int queue_remaining);
                 ("busy_domains", Int busy_domains) ] ) ]))

(* ------------------------------------------------------------------ *)
(* Computation: normalized fields -> deterministic response body      *)

let field q name =
  (* normalization guarantees presence; a miss here is a codec bug *)
  match List.assoc_opt name q.fields with
  | Some v -> v
  | None -> invalid_arg ("Serve: missing normalized field " ^ name)

let ifield q name = int_of_string (field q name)
let ffield q name = float_of_string (field q name)

let sampling_task q =
  match q.kind with
  | "threshold" ->
      let distance = ifield q "distance" in
      Surface_circuit.collect_task
        { (Surface_circuit.default ~distance) with
          Surface_circuit.t_data = ffield q "t_data" }
  | "uec" ->
      let arch =
        match field q "arch" with
        | "het" -> Uec.Het { ts = ffield q "ts" }
        | _ -> Uec.Hom
      in
      Uec.collect_task arch (Codes.by_name (field q "code"))
        ~rounds:(ifield q "rounds")
  | "distill" ->
      let rate_hz = ffield q "rate_hz" in
      let config =
        match field q "arch" with
        | "het" -> Distill_module.heterogeneous ~rate_hz ()
        | _ -> Distill_module.homogeneous ~rate_hz ()
      in
      Distill_module.collect_task config ~horizon:(ffield q "horizon")
        ~min_delivered:(ifield q "min_delivered")
  | k -> invalid_arg ("Serve: not a sampling kind: " ^ k)

let params_json q =
  Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.String v)) q.fields)

let sampling_body q =
  let task = sampling_task q in
  let shots = ifield q "shots" and seed = ifield q "seed" in
  let errors =
    Collect.Task.sample task
      (Collect.batch_rng ~seed ~id:(Collect.Task.id task) ~index:0)
      shots
  in
  let lo, hi =
    Stats.wilson_interval ~successes:errors ~trials:shots ~z:Collect.wilson_z
  in
  Obs.Json.(
    to_string
      (Obj
         [ ("schema", String protocol_version);
           ("kind", String q.kind);
           ("request", String q.hash);
           ("task", String (Collect.Task.id task));
           ("params", params_json q);
           ("shots", Int shots);
           ("errors", Int errors);
           ("rate", Float (float_of_int errors /. float_of_int shots));
           ("wilson_lo", Float lo);
           ("wilson_hi", Float hi) ]))

let dse_body q =
  let alpha = ffield q "alpha" in
  let base = Device.multimode_resonator_3d in
  let storage =
    Device.with_coherence base ~t1:(alpha *. base.Device.t1)
      ~t2:(alpha *. base.Device.t2)
  in
  let cell, op =
    match field q "op" with
    | "load" -> (Cell.register ~storage (), Characterize.Load)
    | "retention" ->
        (Cell.register ~storage (), Characterize.Retention { dt = ffield q "dt" })
    | "seq_cnots" ->
        (Cell.seqop ~storage (), Characterize.Seq_cnots { count = ifield q "count" })
    | _ ->
        ( Cell.usc ~storage (),
          Characterize.Stabilizer
            { weight = ifield q "weight";
              serialized = bool_of_string (field q "serialized") } )
  in
  let memo = Char_store.memo () in
  let perf = (Characterize.characterize_op ~memo cell op).Characterize.perf in
  Obs.Json.(
    to_string
      (Obj
         [ ("schema", String protocol_version);
           ("kind", String q.kind);
           ("request", String q.hash);
           ("params", params_json q);
           ("duration_s", Float perf.Characterize.duration);
           ("error", Float perf.Characterize.error) ]))

let compute_answer q =
  match q.kind with "dse" -> dse_body q | _ -> sampling_body q

(* ------------------------------------------------------------------ *)
(* Warm response tiers: process memory, then the ambient persistent
   store.  The store key wraps the request hash under its own kind, so
   serve responses share a --cache-dir with characterizations without
   any possibility of collision, and Store's version tag makes entries
   from older code unreachable rather than wrong. *)

let memory : (string, string) Hashtbl.t = Hashtbl.create 64
let store_key q = Store.key ~kind:"serve.response" ~fields:[ ("request", q.hash) ]

let warm_answer q =
  match Hashtbl.find_opt memory q.hash with
  | Some body ->
      Obs.Counter.incr warm_memory_hits_total;
      Some body
  | None -> (
      match Char_store.store () with
      | None -> None
      | Some st -> (
          match Store.find st (store_key q) with
          | Some body ->
              Obs.Counter.incr warm_disk_hits_total;
              Hashtbl.replace memory q.hash body;
              Some body
          | None -> None))

let cache_response q body =
  Hashtbl.replace memory q.hash body;
  match Char_store.store () with
  | Some st -> Store.put st (store_key q) body
  | None -> ()

let answer q =
  match warm_answer q with
  | Some body -> body
  | None ->
      let body = compute_answer q in
      cache_response q body;
      body

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                    *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

type endpoint = Unix_path of string | Tcp of int

let connect_endpoint = function
  | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_UNIX path);
         fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)

let request ?(retry_for = 0.) endpoint line =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec connect () =
    match connect_endpoint endpoint with
    | fd -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [] [] [] 0.05);
        connect ()
  in
  let fd = connect () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd (line ^ "\n");
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec read_line () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
        | 0 -> failwith "Serve.request: connection closed before a response"
        | n -> (
            Buffer.add_subbytes buf chunk 0 n;
            let s = Buffer.contents buf in
            match String.index_opt s '\n' with
            | Some i -> String.sub s 0 i
            | None -> read_line ())
      in
      read_line ())

(* ------------------------------------------------------------------ *)
(* The daemon                                                         *)

type conn = { fd : Unix.file_descr; buf : Buffer.t; mutable alive : bool }

let stop = ref false

let compute_traced q =
  (* Child context keyed by the request hash: per-request spans nest under
     the daemon's root span and carry an identity fleet tooling can join
     against response bodies and store entries. *)
  let ctx = Obs.Context.child (Obs.Context.current ()) ~run_id:q.hash in
  Obs.Trace.with_span
    ~attrs:
      [ ("kind", q.kind);
        ("request", q.hash);
        ("ctx", Obs.Context.to_string ctx) ]
    "serve.request"
    (fun () -> compute_answer q)

let run ?(max_queue = 64) endpoint =
  stop := false;
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle (fun _ -> stop := true))))
      [ Sys.sigint; Sys.sigterm ]
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let listen_fd, unix_path =
    match endpoint with
    | Unix_path path ->
        (try if Sys.file_exists path then Sys.remove path
         with Sys_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        (fd, Some path)
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (try
           Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        (fd, None)
  in
  let conns = ref [] in
  let pending : (string, query * conn list ref) Hashtbl.t = Hashtbl.create 16 in
  let queue : string Queue.t = Queue.create () in
  let set_queue_gauge () =
    Obs.Gauge.set queue_depth_gauge (float_of_int (Queue.length queue))
  in
  let reply conn body =
    if conn.alive then (
      try
        write_all conn.fd (body ^ "\n");
        Obs.Counter.incr responses_total
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        conn.alive <- false)
  in
  let handle_request conn line =
    match parse_request line with
    | Error e ->
        Obs.Counter.incr error_responses_total;
        reply conn (error_body e)
    | Ok (Control Ping) -> reply conn (ok_body "ping")
    | Ok (Control Stats) -> reply conn (stats_body ())
    | Ok (Control Shutdown) ->
        reply conn (ok_body "shutdown");
        stop := true
    | Ok (Query q) -> (
        Obs.Counter.incr requests_total;
        match warm_answer q with
        | Some body -> reply conn body
        | None -> (
            match Hashtbl.find_opt pending q.hash with
            | Some (_, waiters) ->
                (* single-flight: attach to the in-flight computation *)
                Obs.Counter.incr coalesced_total;
                waiters := conn :: !waiters
            | None ->
                if Queue.length queue >= max_queue then (
                  Obs.Counter.incr rejected_total;
                  reply conn
                    (error_body
                       { code = 429;
                         message =
                           Printf.sprintf "queue full (%d pending)" max_queue
                       }))
                else (
                  Hashtbl.replace pending q.hash (q, ref [ conn ]);
                  Queue.push q.hash queue;
                  set_queue_gauge ())))
  in
  let drain_conn conn =
    let rec go () =
      let s = Buffer.contents conn.buf in
      match String.index_opt s '\n' with
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear conn.buf;
          Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
          let line =
            if line <> "" && line.[String.length line - 1] = '\r' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          if String.trim line <> "" then handle_request conn line;
          if conn.alive && not !stop then go ()
      | None ->
          if String.length s > max_request_bytes then (
            (* no newline in sight and the bound is blown: answer and close
               (there is no reliable way to resync the stream) *)
            Obs.Counter.incr error_responses_total;
            reply conn
              (error_body
                 { code = 413;
                   message =
                     Printf.sprintf "request exceeds %d bytes" max_request_bytes
                 });
            conn.alive <- false)
    in
    go ()
  in
  let read_chunk = Bytes.create 4096 in
  let read_conn conn =
    match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
    | 0 -> conn.alive <- false
    | n ->
        Buffer.add_subbytes conn.buf read_chunk 0 n;
        drain_conn conn
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        conn.alive <- false
  in
  let accept_conn () =
    match Unix.accept listen_fd with
    | fd, _ -> conns := { fd; buf = Buffer.create 256; alive = true } :: !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let compute_one () =
    match Queue.pop queue with
    | exception Queue.Empty -> ()
    | h ->
        set_queue_gauge ();
        (match Hashtbl.find_opt pending h with
        | None -> ()
        | Some (q, waiters) ->
            (* A computation exception must not kill the daemon: waiters
               get a structured 500 and nothing is cached. *)
            let body =
              match compute_traced q with
              | body ->
                  Obs.Counter.incr computed_total;
                  cache_response q body;
                  body
              | exception e ->
                  Obs.Counter.incr error_responses_total;
                  error_body
                    { code = 500;
                      message = "internal error: " ^ Printexc.to_string e }
            in
            Hashtbl.remove pending h;
            List.iter (fun c -> reply c body) (List.rev !waiters))
  in
  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let finally () =
    (* Stragglers get a structured refusal, not a hung connection. *)
    Queue.clear queue;
    Hashtbl.iter
      (fun _ (_, waiters) ->
        List.iter
          (fun c -> reply c (error_body { code = 503; message = "shutting down" }))
          !waiters)
      pending;
    Hashtbl.reset pending;
    List.iter (fun c -> close_fd c.fd) !conns;
    conns := [];
    close_fd listen_fd;
    Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) unix_path;
    List.iter (fun (s, b) -> Sys.set_signal s b) previous;
    Sys.set_signal Sys.sigpipe prev_pipe
  in
  Fun.protect ~finally (fun () ->
      while not !stop do
        Obs.Telemetry.tick ();
        conns :=
          List.filter
            (fun c -> if c.alive then true else (close_fd c.fd; false))
            !conns;
        Obs.Gauge.set connections_gauge (float_of_int (List.length !conns));
        (* Exhaust readiness before computing: accept every backlogged
           connection and drain every readable one until select reports
           nothing, so all the requests that piled up during the previous
           computation land on the pending table (coalescing duplicates)
           before the next computation starts.  Zero timeout while work is
           queued — between computations we pump, never block. *)
        let rec pump timeout =
          match
            Unix.select
              (listen_fd
              :: List.filter_map
                   (fun c -> if c.alive then Some c.fd else None)
                   !conns)
              [] [] timeout
          with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | readable, _, _ ->
              List.iter
                (fun fd ->
                  if fd = listen_fd then accept_conn ()
                  else
                    match List.find_opt (fun c -> c.fd = fd) !conns with
                    | Some conn when conn.alive -> read_conn conn
                    | _ -> ())
                readable;
              if not !stop then pump 0.
        in
        pump (if Queue.is_empty queue then 0.2 else 0.);
        if (not !stop) && not (Queue.is_empty queue) then compute_one ()
      done)
