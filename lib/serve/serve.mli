(** Long-running estimation service: newline-delimited JSON over a socket.

    [hetarch serve] turns the batch toolkit into a resident daemon: clients
    send one JSON object per line over a Unix-domain (or loopback TCP)
    socket and receive one JSON response line back.  Query kinds cover the
    sampling campaigns ([threshold], [uec], [distill]) and the DSE
    characterization backend ([dse]); control kinds ([ping], [stats],
    [shutdown]) manage the daemon itself.

    {b Request identity}: a request is normalized — defaults filled in,
    fields sorted by key, numbers rendered canonically — and content-hashed
    with the {!Content_hash} length-prefixed encoding, so field order,
    whitespace, and explicitly-spelled defaults never change identity.
    The hash keys everything downstream: the warm response caches, the
    single-flight table, and the per-request trace attribution.

    {b Warm answers}: identical requests are answered from a two-tier
    response cache — process memory first, then the persistent {!Store}
    (under the ambient [--cache-dir], kind ["serve.response"]) — and the
    [dse] kind additionally rides the {!Char_store} characterization
    tiers.  Responses contain only deterministic content (no timestamps,
    no serving metadata), so identical requests receive byte-identical
    bodies whether computed cold, coalesced, served warm, or recomputed by
    a daemon running at a different [--jobs].

    {b Single-flight}: concurrent duplicates coalesce — one computation,
    every waiter gets the same bytes.  Admission is bounded: past the
    queue depth limit the daemon answers a structured 429-style rejection
    instead of queueing without bound. *)

val protocol_version : string
(** Schema tag stamped into every response: ["hetarch.serve/1"]. *)

val max_request_bytes : int
(** Upper bound on one request line (64 KiB).  Longer bodies are answered
    with a 413-style error; a connection that streams past the bound
    without a newline is answered and closed. *)

(** {1 Request codec} *)

type query = {
  kind : string;  (** validated query kind *)
  fields : (string * string) list;
      (** normalized parameters: every field present (defaults filled),
          sorted by key, numbers in canonical rendering *)
  hash : string;  (** 16-hex request identity over [kind] and [fields] *)
}

type control = Ping | Stats | Shutdown

type request = Query of query | Control of control

type error = { code : int; message : string }
(** HTTP-flavored status codes: 400 malformed body or parameter, 404
    unknown query kind, 413 oversized request, 429 queue full. *)

val request_hash : kind:string -> fields:(string * string) list -> string
(** The identity hash: {!Content_hash.of_components} over a protocol
    version tag, the kind, and the (already normalized) fields in key
    order.  Exposed so tests can pin wire-compatibility vectors. *)

val parse_request : string -> (request, error) result
(** Parse and normalize one request line.  Never raises: malformed JSON,
    non-object bodies, unknown kinds, unknown fields, wrong types, and
    out-of-range values all come back as structured [Error]s. *)

val error_body : error -> string
(** One-line JSON rendering of an error response. *)

(** {1 Answering} *)

val warm_answer : query -> string option
(** Response body from the warm tiers only: process memory, then the
    ambient persistent store ({!Char_store.set_dir}).  Disk hits are
    promoted into memory.  Bumps the [serve.warm_*_hits_total] counters. *)

val cache_response : query -> string -> unit
(** Install a response body in both warm tiers (memory, and the ambient
    persistent store when one is installed). *)

val compute_answer : query -> string
(** Compute the response body (deterministic content only — identical
    queries produce identical bytes at any [--jobs]).  Sampling kinds run
    the task's {!Collect.Task.sample} under {!Collect.batch_rng} batch 0,
    so answers are byte-comparable with campaign ledger batches at the
    same seed; [dse] characterizes through {!Char_store.memo}. *)

val answer : query -> string
(** [warm_answer] falling back to [compute_answer] with write-back into
    both warm tiers. *)

val stats_body : unit -> string
(** The [stats] control response: serve counters and gauges plus
    {!Parallel} pool statistics, as one JSON line. *)

(** {1 Daemon} *)

type endpoint =
  | Unix_path of string  (** Unix-domain stream socket at this path *)
  | Tcp of int  (** loopback-only TCP on this port *)

val run : ?max_queue:int -> endpoint -> unit
(** Serve until [shutdown] (or SIGINT/SIGTERM).  Single-threaded select
    loop: reads are multiplexed, computations run one at a time on the
    loop (fanning shots across the {!Parallel} pool), so requests arriving
    while a computation is in flight coalesce onto the pending entry or
    queue behind it, up to [max_queue] (default 64) pending uniques.  Each
    computed request runs under a [serve.request] span with a child
    {!Obs.Context} keyed by the request hash.

    Returns normally on shutdown — the CLI's finalizers (telemetry flush,
    snapshot, registry record) run exactly once on the way out, SIGTERM
    included. *)

val request : ?retry_for:float -> endpoint -> string -> string
(** One-shot client: connect, send one line, return the response line
    (without the trailing newline).  [retry_for] retries refused or
    not-yet-bound sockets for that many seconds (default 0: fail fast) —
    the daemon-startup race absorber for scripts and the smoke.  Raises
    [Unix.Unix_error] or [Failure] on connection/protocol failure. *)
